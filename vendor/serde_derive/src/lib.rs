//! `#[derive(Serialize, Deserialize)]` for the vendored JSON-only
//! `serde` stub.
//!
//! Supported item shapes (everything the workspace derives on):
//!
//! - structs with named fields, tuple structs, unit structs;
//! - enums whose variants are unit, newtype (one unnamed field), or
//!   struct-like (named fields); multi-field tuple variants encode as
//!   arrays.
//!
//! Generics and `where` clauses are rejected with a compile error —
//! none of the workspace types need them, and supporting them without
//! `syn` is not worth the complexity.
//!
//! The wire format matches `serde_json` defaults: structs are objects
//! keyed by field name, unit variants are bare strings, data-carrying
//! variants are externally tagged one-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

/// Derive `serde::Serialize` (JSON-only stub).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

/// Derive `serde::Deserialize` (JSON-only stub).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected struct/enum, found {t}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected type name, found {t}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (type `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                t => panic!("serde_derive: unsupported struct body: {t:?}"),
            };
            Input {
                name,
                body: Body::Struct(fields),
            }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                t => panic!("serde_derive: unsupported enum body: {t:?}"),
            };
            Input { name, body }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and any
/// `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    toks.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Names of the fields in `{ a: T, b: U }`. Commas inside generic
/// argument lists (`BTreeMap<usize, V>`) are not separators, so track
/// angle-bracket depth while scanning types.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected field name, found {t}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("serde_derive: expected `:` after field `{name}`, found {t}"),
        }
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Arity of a tuple struct/variant body `(T, U, ...)`.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Body {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected variant name, found {t}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip any discriminant (`= expr`) up to the separating comma.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Body::Enum(variants)
}

// ---------------------------------------------------------------- codegen

fn ser_named_fields(out: &mut String, fields: &[String], access_prefix: &str) {
    out.push_str("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str("out.push(',');\n");
        }
        out.push_str(&format!("::serde::ser::write_key(out, \"{f}\");\n"));
        out.push_str(&format!(
            "::serde::Serialize::json_serialize(&{access_prefix}{f}, out);\n"
        ));
    }
    out.push_str("out.push('}');\n");
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.body {
        Body::Struct(Fields::Named(fields)) => ser_named_fields(&mut body, fields, "self."),
        Body::Struct(Fields::Tuple(1)) => {
            body.push_str("::serde::Serialize::json_serialize(&self.0, out);\n");
        }
        Body::Struct(Fields::Tuple(n)) => {
            body.push_str("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::json_serialize(&self.{i}, out);\n"
                ));
            }
            body.push_str("out.push(']');\n");
        }
        Body::Struct(Fields::Unit) => {
            body.push_str("out.push_str(\"null\");\n");
        }
        Body::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => body.push_str(&format!(
                        "{name}::{vn} => ::serde::ser::write_string(out, \"{vn}\"),\n"
                    )),
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        body.push_str(&format!("{name}::{vn} {{ {binds} }} => {{\n"));
                        body.push_str("out.push('{');\n");
                        body.push_str(&format!("::serde::ser::write_key(out, \"{vn}\");\n"));
                        ser_named_fields(&mut body, fields, "");
                        body.push_str("out.push('}');\n}\n");
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                        body.push_str(&format!("{name}::{vn}({}) => {{\n", binds.join(", ")));
                        body.push_str("out.push('{');\n");
                        body.push_str(&format!("::serde::ser::write_key(out, \"{vn}\");\n"));
                        if *n == 1 {
                            body.push_str("::serde::Serialize::json_serialize(__v0, out);\n");
                        } else {
                            body.push_str("out.push('[');\n");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::json_serialize({b}, out);\n"
                                ));
                            }
                            body.push_str("out.push(']');\n");
                        }
                        body.push_str("out.push('}');\n}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn json_serialize(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}\n"
    )
}

/// Emit the field-loop that parses `{{\"f\": v, ...}}` into local
/// `__f_*` options, then the struct/variant construction expression.
fn de_named_fields(out: &mut String, fields: &[String], constructor: &str) {
    out.push_str("de.expect_char('{')?;\n");
    for f in fields {
        out.push_str(&format!(
            "let mut __f_{f} = ::core::option::Option::None;\n"
        ));
    }
    out.push_str("if !de.eat_char('}') {\nloop {\n");
    out.push_str("let __key = de.parse_string()?;\nde.expect_char(':')?;\n");
    out.push_str("match __key.as_str() {\n");
    for f in fields {
        out.push_str(&format!(
            "\"{f}\" => {{ __f_{f} = ::core::option::Option::Some(\
             ::serde::Deserialize::json_deserialize(de)?); }}\n"
        ));
    }
    out.push_str("_ => { de.skip_value()?; }\n}\n");
    out.push_str("if de.eat_char(',') { continue; }\nde.expect_char('}')?;\nbreak;\n}\n}\n");
    out.push_str(&format!("{constructor} {{\n"));
    for f in fields {
        out.push_str(&format!(
            "{f}: match __f_{f} {{ ::core::option::Option::Some(v) => v, \
             ::core::option::Option::None => \
             return ::core::result::Result::Err(de.missing_field(\"{f}\")) }},\n"
        ));
    }
    out.push_str("}\n");
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let mut inner = String::new();
            de_named_fields(&mut inner, fields, name);
            body.push_str(&format!("::core::result::Result::Ok({{\n{inner}\n}})\n"));
        }
        Body::Struct(Fields::Tuple(1)) => {
            body.push_str(&format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::json_deserialize(de)?))\n"
            ));
        }
        Body::Struct(Fields::Tuple(n)) => {
            body.push_str("de.expect_char('[')?;\n");
            let mut parts = Vec::new();
            for i in 0..*n {
                if i > 0 {
                    body.push_str("de.expect_char(',')?;\n");
                }
                body.push_str(&format!(
                    "let __v{i} = ::serde::Deserialize::json_deserialize(de)?;\n"
                ));
                parts.push(format!("__v{i}"));
            }
            body.push_str("de.expect_char(']')?;\n");
            body.push_str(&format!(
                "::core::result::Result::Ok({name}({}))\n",
                parts.join(", ")
            ));
        }
        Body::Struct(Fields::Unit) => {
            body.push_str(
                "if !de.eat_keyword(\"null\") { \
                 return ::core::result::Result::Err(de.error(\"expected null\")); }\n",
            );
            body.push_str(&format!("::core::result::Result::Ok({name})\n"));
        }
        Body::Enum(variants) => {
            let has_data = variants.iter().any(|v| !matches!(v.fields, Fields::Unit));
            body.push_str("match de.peek() {\n");
            // Unit variants arrive as bare strings.
            body.push_str(
                "::core::option::Option::Some(b'\"') => {\nlet __tag = de.parse_string()?;\n\
                 match __tag.as_str() {\n",
            );
            for v in variants.iter().filter(|v| matches!(v.fields, Fields::Unit)) {
                let vn = &v.name;
                body.push_str(&format!(
                    "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            body.push_str(
                "__other => ::core::result::Result::Err(\
                 de.error(&::std::format!(\"unknown variant `{}`\", __other))),\n}\n}\n",
            );
            if has_data {
                body.push_str(
                    "::core::option::Option::Some(b'{') => {\nde.expect_char('{')?;\n\
                     let __tag = de.parse_string()?;\nde.expect_char(':')?;\n\
                     let __value = match __tag.as_str() {\n",
                );
                for v in variants
                    .iter()
                    .filter(|v| !matches!(v.fields, Fields::Unit))
                {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Named(fields) => {
                            let mut inner = String::new();
                            de_named_fields(&mut inner, fields, &format!("{name}::{vn}"));
                            body.push_str(&format!("\"{vn}\" => {{\n{inner}\n}}\n"));
                        }
                        Fields::Tuple(1) => {
                            body.push_str(&format!(
                                "\"{vn}\" => {name}::{vn}(\
                                 ::serde::Deserialize::json_deserialize(de)?),\n"
                            ));
                        }
                        Fields::Tuple(n) => {
                            let mut inner = String::from("{\nde.expect_char('[')?;\n");
                            let mut parts = Vec::new();
                            for i in 0..*n {
                                if i > 0 {
                                    inner.push_str("de.expect_char(',')?;\n");
                                }
                                inner.push_str(&format!(
                                    "let __v{i} = ::serde::Deserialize::json_deserialize(de)?;\n"
                                ));
                                parts.push(format!("__v{i}"));
                            }
                            inner.push_str("de.expect_char(']')?;\n");
                            inner.push_str(&format!("{name}::{vn}({})\n}}", parts.join(", ")));
                            body.push_str(&format!("\"{vn}\" => {inner},\n"));
                        }
                        Fields::Unit => unreachable!(),
                    }
                }
                body.push_str(
                    "__other => return ::core::result::Result::Err(\
                     de.error(&::std::format!(\"unknown variant `{}`\", __other))),\n};\n\
                     de.expect_char('}')?;\n::core::result::Result::Ok(__value)\n}\n",
                );
            }
            body.push_str(
                "_ => ::core::result::Result::Err(de.error(\"expected enum value\")),\n}\n",
            );
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn json_deserialize(de: &mut ::serde::de::Deserializer<'_>) \
         -> ::core::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
