//! Exact query execution — the ground-truth oracle.
//!
//! `QueryEngine` evaluates the observed query function
//! `f_D(q) = AGG({x ∈ D : P_f(q,x) = 1})` exactly, as the paper's
//! training-set generation does. Two things make it fast enough to label
//! hundred-thousand-query workloads:
//!
//! * a **sorted-column index** built once per engine: every attribute's
//!   values sorted with their row ids, plus prefix sums of the measure's
//!   first two moments in sorted order. A single-attribute exact range
//!   predicate (the common workload shape) answers COUNT/SUM/AVG/STD with
//!   two binary searches and no row access at all; every other predicate
//!   with axis bounds scans only the candidate rows of its most selective
//!   attribute and verifies the full predicate on those;
//! * **parallel batch labeling** over the shared [`par`] worker pool,
//!   with one reusable scratch buffer per worker (mirroring the paper's
//!   GPU-parallel label generation).
//!
//! Predicates with no axis bounds (e.g. half-spaces) fall back to the
//! full scan.

use crate::aggregate::{Aggregate, Moments};
use crate::predicate::PredicateFn;
use datagen::Dataset;

/// One attribute's slice of the sorted-column index.
#[derive(Debug, Clone)]
struct AttrIndex {
    /// The attribute's values in ascending order.
    vals: Vec<f64>,
    /// Row ids aligned with `vals`.
    rows: Vec<u32>,
    /// `prefix[i]` = sum of the measure over the first `i` sorted rows.
    prefix: Vec<f64>,
    /// Like `prefix`, for the squared measure (for STD).
    prefix2: Vec<f64>,
}

impl AttrIndex {
    /// Finish an index from a sorted row order: materialize the value
    /// array and accumulate the prefix sums in that order. Both the full
    /// build and the incremental merge end here, so their floating-point
    /// accumulation order — and therefore every answer — is identical.
    fn from_order(order: Vec<u32>, col: &[f64], data: &Dataset, measure: usize) -> AttrIndex {
        let n = order.len();
        let vals: Vec<f64> = order.iter().map(|&r| col[r as usize]).collect();
        let mut prefix = Vec::with_capacity(n + 1);
        let mut prefix2 = Vec::with_capacity(n + 1);
        let (mut s, mut s2) = (0.0f64, 0.0f64);
        prefix.push(0.0);
        prefix2.push(0.0);
        let raw = data.raw();
        let d = data.dims();
        for &r in &order {
            let m = raw[r as usize * d + measure];
            s += m;
            s2 += m * m;
            prefix.push(s);
            prefix2.push(s2);
        }
        AttrIndex {
            vals,
            rows: order,
            prefix,
            prefix2,
        }
    }

    fn build(data: &Dataset, attr: usize, measure: usize) -> AttrIndex {
        let n = data.rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let col = data.column(attr);
        order.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
        AttrIndex::from_order(order, &col, data, measure)
    }

    /// Merge the appended rows `old_rows..data.rows()` into this index
    /// without re-sorting the existing rows: sort only the delta
    /// (`O(m log m)`), then merge the two sorted runs (`O(n + m)`). Ties
    /// break exactly as the stable full sort does — existing rows first
    /// (their row ids all precede the delta's), delta rows in row order —
    /// so the merged order, and with [`AttrIndex::from_order`] the
    /// prefix sums, are **bitwise identical** to a from-scratch
    /// [`AttrIndex::build`] over the grown table.
    fn extended(self, data: &Dataset, attr: usize, measure: usize, old_rows: usize) -> AttrIndex {
        let n = data.rows();
        let col = data.column(attr);
        let mut delta: Vec<u32> = (old_rows as u32..n as u32).collect();
        delta.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
        let mut order = Vec::with_capacity(n);
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.vals.len() && j < delta.len() {
            // total_cmp, not `<=`: the full sort orders -0.0 before 0.0,
            // and the merge must reproduce that exactly.
            if self.vals[i].total_cmp(&col[delta[j] as usize]).is_le() {
                order.push(self.rows[i]);
                i += 1;
            } else {
                order.push(delta[j]);
                j += 1;
            }
        }
        order.extend_from_slice(&self.rows[i..]);
        order.extend_from_slice(&delta[j..]);
        AttrIndex::from_order(order, &col, data, measure)
    }

    /// Half-open sorted range `[lo, hi)` of positions whose value is in
    /// `[lo_v, hi_v)`.
    fn range_half_open(&self, lo_v: f64, hi_v: f64) -> (usize, usize) {
        let lo = self.vals.partition_point(|v| *v < lo_v);
        let hi = self.vals.partition_point(|v| *v < hi_v);
        (lo, hi.max(lo))
    }

    /// Conservative candidate range: values in `[lo_v, hi_v]`, endpoints
    /// included (safe for predicates whose bounds are inclusive).
    fn range_inclusive(&self, lo_v: f64, hi_v: f64) -> (usize, usize) {
        let lo = self.vals.partition_point(|v| *v < lo_v);
        let hi = self.vals.partition_point(|v| *v <= hi_v);
        (lo, hi.max(lo))
    }
}

/// Why an [`IndexSnapshot`] could not be resumed over a grown table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The grown table has fewer rows than the snapshot indexed — rows
    /// were deleted, which the append-only incremental path cannot
    /// represent. Rebuild with [`QueryEngine::new`].
    Shrunk {
        /// Rows the snapshot's index covers.
        indexed: usize,
        /// Rows the offered table holds.
        got: usize,
    },
    /// The grown table's column count differs from the snapshot's.
    SchemaChanged {
        /// Attribute count the snapshot indexed.
        indexed: usize,
        /// Attribute count of the offered table.
        got: usize,
    },
    /// The grown table's first rows are not byte-identical to the rows
    /// the snapshot indexed — the "old data is a prefix" contract is
    /// broken (an update or re-sort happened, not an append).
    PrefixChanged,
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Shrunk { indexed, got } => {
                write!(
                    f,
                    "table shrank: snapshot indexed {indexed} rows, table has {got}"
                )
            }
            ResumeError::SchemaChanged { indexed, got } => {
                write!(
                    f,
                    "schema changed: snapshot indexed {indexed} columns, table has {got}"
                )
            }
            ResumeError::PrefixChanged => {
                write!(
                    f,
                    "existing rows changed: the snapshot's rows are not a prefix of the table"
                )
            }
        }
    }
}

impl std::error::Error for ResumeError {}

/// A [`QueryEngine`]'s sorted-column index, detached from the dataset
/// borrow so ingestion can append rows between queries:
///
/// ```
/// use datagen::Dataset;
/// use query::exec::QueryEngine;
///
/// let mut data = Dataset::from_rows(
///     vec!["a".into(), "m".into()],
///     &[vec![0.1, 1.0], vec![0.9, 2.0]],
/// ).unwrap();
/// let delta = Dataset::from_rows(vec!["a".into(), "m".into()], &[vec![0.5, 3.0]]).unwrap();
///
/// let engine = QueryEngine::new(&data, 1);
/// let snapshot = engine.into_snapshot(); // releases the borrow on `data`
/// data.append(&delta).unwrap();
/// let engine = QueryEngine::resume(snapshot, &data).unwrap();
/// assert_eq!(engine.dataset().rows(), 3);
/// ```
///
/// [`QueryEngine::resume`] merges the appended rows into each sorted
/// column in `O(n + m log m)` instead of the `O((n + m) log (n + m))`
/// full re-sort, and the resumed engine is **bitwise identical** to a
/// freshly built one — same sorted orders, same prefix-sum accumulation
/// order, same answers.
#[derive(Debug, Clone)]
pub struct IndexSnapshot {
    measure: usize,
    rows: usize,
    dims: usize,
    prefix_fingerprint: u64,
    index: Vec<AttrIndex>,
}

impl IndexSnapshot {
    /// Rows the snapshot's index covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The measure column the snapshot's prefix sums aggregate.
    pub fn measure(&self) -> usize {
        self.measure
    }
}

/// FNV-1a 64-bit over a byte stream — the workspace's one
/// non-cryptographic integrity hash, shared by the engine-snapshot
/// prefix fingerprint here and `neurosketch::persist`'s artifact
/// checksums. Detects truncation, bit rot and swapped content; it is
/// *not* collision-resistant against an adversary.
pub fn fnv1a_64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a over the row-major bytes of the first `rows` rows — the cheap
/// integrity check behind [`ResumeError::PrefixChanged`].
fn prefix_fingerprint(data: &Dataset, rows: usize) -> u64 {
    fnv1a_64(
        data.raw()[..rows * data.dims()]
            .iter()
            .flat_map(|v| v.to_le_bytes()),
    )
}

/// Exact evaluator of query functions over a dataset.
///
/// Construction sorts every attribute column once (`O(d · n log n)`);
/// each engine is expected to label many queries, which is exactly how
/// the build pipeline uses it. When the table grows by appends, the
/// snapshot/resume pair ([`QueryEngine::into_snapshot`] /
/// [`QueryEngine::resume`]) reindexes incrementally instead.
#[derive(Debug, Clone)]
pub struct QueryEngine<'a> {
    data: &'a Dataset,
    measure: usize,
    index: Vec<AttrIndex>,
}

impl<'a> QueryEngine<'a> {
    /// Evaluate over `data`, aggregating the `measure` column.
    ///
    /// # Panics
    /// Panics if `measure` is out of range — this is a programming error,
    /// not user input.
    pub fn new(data: &'a Dataset, measure: usize) -> Self {
        assert!(
            measure < data.dims(),
            "measure column {measure} out of range"
        );
        let index = (0..data.dims())
            .map(|a| AttrIndex::build(data, a, measure))
            .collect();
        QueryEngine {
            data,
            measure,
            index,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.data
    }

    /// Detach the engine's index from its dataset borrow, so the caller
    /// can [`append`](datagen::Dataset::append) a delta and
    /// [`resume`](QueryEngine::resume) without a full re-sort.
    pub fn into_snapshot(self) -> IndexSnapshot {
        IndexSnapshot {
            measure: self.measure,
            rows: self.data.rows(),
            dims: self.data.dims(),
            prefix_fingerprint: prefix_fingerprint(self.data, self.data.rows()),
            index: self.index,
        }
    }

    /// Rebuild an engine over `grown` — the snapshot's table with zero or
    /// more rows appended — by merging only the delta into each sorted
    /// column index (`O(d · (n + m log m))`). The result is bitwise
    /// identical to `QueryEngine::new(grown, snapshot.measure())`.
    ///
    /// The contract — `grown`'s first `snapshot.rows()` rows are exactly
    /// the rows the snapshot indexed — is verified with a byte
    /// fingerprint, so an update-in-place or re-sort masquerading as an
    /// append is a typed [`ResumeError`], never a silently wrong index.
    pub fn resume(
        snapshot: IndexSnapshot,
        grown: &'a Dataset,
    ) -> Result<QueryEngine<'a>, ResumeError> {
        if grown.dims() != snapshot.dims {
            return Err(ResumeError::SchemaChanged {
                indexed: snapshot.dims,
                got: grown.dims(),
            });
        }
        if grown.rows() < snapshot.rows {
            return Err(ResumeError::Shrunk {
                indexed: snapshot.rows,
                got: grown.rows(),
            });
        }
        if prefix_fingerprint(grown, snapshot.rows) != snapshot.prefix_fingerprint {
            return Err(ResumeError::PrefixChanged);
        }
        let index = if grown.rows() == snapshot.rows {
            snapshot.index
        } else {
            snapshot
                .index
                .into_iter()
                .enumerate()
                .map(|(attr, ai)| ai.extended(grown, attr, snapshot.measure, snapshot.rows))
                .collect()
        };
        Ok(QueryEngine {
            data: grown,
            measure: snapshot.measure,
            index,
        })
    }

    /// The measure column index.
    pub fn measure(&self) -> usize {
        self.measure
    }

    /// Exact answer `f_D(q)`.
    pub fn answer(&self, pred: &dyn PredicateFn, agg: Aggregate, q: &[f64]) -> f64 {
        let mut scratch = Vec::new();
        self.answer_with(&mut scratch, pred, agg, q)
    }

    /// Exact answer using a caller-provided scratch buffer, so repeated
    /// calls (batch labeling, per-worker loops) allocate nothing in
    /// steady state.
    pub fn answer_with(
        &self,
        scratch: &mut Vec<f64>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> f64 {
        debug_assert_eq!(q.len(), pred.query_dim());
        if let Some(bounds) = pred.axis_bounds(q) {
            if !bounds.is_empty() {
                return self.answer_pruned(scratch, pred, agg, q, &bounds);
            }
        }
        self.answer_scan(scratch, pred, agg, q)
    }

    /// Index-assisted path: answer from prefix sums when the bounds fully
    /// define the predicate over one attribute, otherwise verify the
    /// predicate on the most selective attribute's candidate rows only.
    /// Non-MEDIAN aggregates delegate to the moments path — one copy of
    /// the index math serves both `answer` and `moments`, which is what
    /// keeps the sharded gather-equals-answer invariant structural.
    fn answer_pruned(
        &self,
        scratch: &mut Vec<f64>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
        bounds: &[(usize, f64, f64)],
    ) -> f64 {
        if matches!(agg, Aggregate::Median) {
            // MEDIAN is not a function of moments: materialize the
            // candidate-verified matches and select.
            scratch.clear();
            scratch.extend(self.pruned_matching(pred, q, bounds));
            return agg.apply(scratch);
        }
        self.moments_pruned(pred, q, bounds)
            .finish(agg)
            .expect("every non-median aggregate is a function of moments")
    }

    /// Candidate verification shared by the pruned answer and moments
    /// paths: pick the most selective bounded attribute and yield the
    /// measure values of its candidate rows that satisfy the full
    /// predicate. Endpoints are kept inclusive so bounding-box pruning
    /// (rotated rectangles, spheres) stays a strict superset of the
    /// true match set.
    fn pruned_matching<'q>(
        &'q self,
        pred: &'q dyn PredicateFn,
        q: &'q [f64],
        bounds: &[(usize, f64, f64)],
    ) -> impl Iterator<Item = f64> + 'q {
        let (mut best, mut best_width) = (None, usize::MAX);
        for &(attr, lo_v, hi_v) in bounds {
            let ai = &self.index[attr];
            let (lo, hi) = ai.range_inclusive(lo_v, hi_v);
            if hi - lo < best_width {
                best_width = hi - lo;
                best = Some((attr, lo, hi));
            }
        }
        let (attr, lo, hi) = best.expect("bounds nonempty");
        let candidates = &self.index[attr].rows[lo..hi];
        let raw = self.data.raw();
        let d = self.data.dims();
        candidates.iter().filter_map(move |&r| {
            let row = &raw[r as usize * d..(r as usize + 1) * d];
            if pred.matches(q, row) {
                Some(row[self.measure])
            } else {
                None
            }
        })
    }

    /// Full-scan fallback for predicates with no axis bounds.
    fn answer_scan(
        &self,
        scratch: &mut Vec<f64>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> f64 {
        let matching = self
            .data
            .iter_rows()
            .filter(|row| pred.matches(q, row))
            .map(|row| row[self.measure]);
        match agg {
            Aggregate::Median => {
                scratch.clear();
                scratch.extend(matching);
                agg.apply(scratch)
            }
            _ => agg
                .apply_streaming(matching)
                .expect("streaming covers all non-median aggregates"),
        }
    }

    /// Exact first three moments `(n, Σ, Σ²)` of the matching measure
    /// values — the sufficient statistics every non-MEDIAN aggregate is
    /// a function of ([`Aggregate::from_moments`]).
    ///
    /// This is the labeling primitive for sharded deployments
    /// (`neurosketch::shard`): per-shard engines label the same workload
    /// with per-shard moments, one model is trained per component, and
    /// gathered answers recombine exactly.
    pub fn moments(&self, pred: &dyn PredicateFn, q: &[f64]) -> Moments {
        debug_assert_eq!(q.len(), pred.query_dim());
        if let Some(bounds) = pred.axis_bounds(q) {
            if !bounds.is_empty() {
                return self.moments_pruned(pred, q, &bounds);
            }
        }
        Moments::of(
            self.data
                .iter_rows()
                .filter(|row| pred.matches(q, row))
                .map(|row| row[self.measure]),
        )
    }

    /// Index-assisted moment computation, mirroring the two pruned
    /// answer paths: prefix-sum differences when the bounds exactly
    /// define a single-attribute predicate, candidate verification on
    /// the most selective attribute otherwise.
    fn moments_pruned(
        &self,
        pred: &dyn PredicateFn,
        q: &[f64],
        bounds: &[(usize, f64, f64)],
    ) -> Moments {
        if pred.axis_bounds_exact() && bounds.len() == 1 {
            let (attr, lo_v, hi_v) = bounds[0];
            let ai = &self.index[attr];
            let (lo, hi) = ai.range_half_open(lo_v, hi_v);
            return Moments {
                n: (hi - lo) as f64,
                s: ai.prefix[hi] - ai.prefix[lo],
                s2: ai.prefix2[hi] - ai.prefix2[lo],
            };
        }
        Moments::of(self.pruned_matching(pred, q, bounds))
    }

    /// Moment-label a batch of queries, in parallel across `threads`
    /// workers on the shared [`par`] pool; the moment analogue of
    /// [`QueryEngine::label_batch`]. Results are in input order.
    pub fn label_moments_batch(
        &self,
        pred: &dyn PredicateFn,
        queries: &[Vec<f64>],
        threads: usize,
    ) -> Vec<Moments> {
        let threads = effective_threads(queries.len(), threads);
        par::par_map(queries, threads, |_, q| self.moments(pred, q))
    }

    /// Label a batch of queries, in parallel across `threads` workers on
    /// the shared [`par`] pool. Results are in input order; each worker
    /// reuses one scratch buffer across all its queries.
    pub fn label_batch(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        queries: &[Vec<f64>],
        threads: usize,
    ) -> Vec<f64> {
        let threads = effective_threads(queries.len(), threads);
        par::par_map_init(queries, threads, Vec::new, |scratch, _, q| {
            self.answer_with(scratch, pred, agg, q)
        })
    }
}

/// Shared small-batch downgrade for the labeling entry points: below
/// two queries per worker, thread spawn overhead beats the parallelism,
/// so run sequentially.
fn effective_threads(queries: usize, threads: usize) -> usize {
    if queries < 2 * threads.max(1) {
        1
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{HalfSpace, Range, RotatedRect};
    use datagen::Dataset;

    fn grid_data() -> Dataset {
        // 10 rows: attr0 = i/10, measure = i.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0, i as f64]).collect();
        Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap()
    }

    #[test]
    fn count_and_sum_over_half_range() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        // attr0 in [0, 0.5): rows 0..=4.
        let q = [0.0, 0.5];
        assert_eq!(eng.answer(&pred, Aggregate::Count, &q), 5.0);
        assert_eq!(eng.answer(&pred, Aggregate::Sum, &q), 10.0);
        assert_eq!(eng.answer(&pred, Aggregate::Avg, &q), 2.0);
        assert_eq!(eng.answer(&pred, Aggregate::Median, &q), 2.0);
    }

    #[test]
    fn empty_range_yields_zero() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.95, 0.01];
        for agg in Aggregate::ALL {
            assert_eq!(eng.answer(&pred, agg, &q), 0.0, "{}", agg.name());
        }
    }

    #[test]
    fn batch_labels_match_sequential_and_parallel() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let queries: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 50.0, 0.3]).collect();
        let seq = eng.label_batch(&pred, Aggregate::Sum, &queries, 1);
        let par = eng.label_batch(&pred, Aggregate::Sum, &queries, 4);
        assert_eq!(seq, par);
        assert_eq!(seq[0], eng.answer(&pred, Aggregate::Sum, &queries[0]));
    }

    /// The indexed paths must agree with a straight full scan on every
    /// aggregate and predicate shape (single-attr exact, multi-attr
    /// exact, bounding-box pruned, unprunable).
    #[test]
    fn indexed_paths_match_full_scan() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i as f64 * 0.37) % 1.0,
                    (i as f64 * 0.71) % 1.0,
                    ((i * i) as f64 * 0.13) % 1.0,
                ]
            })
            .collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into(), "m".into()], &rows).unwrap();
        let eng = QueryEngine::new(&d, 2);
        let scan = |pred: &dyn PredicateFn, agg: Aggregate, q: &[f64]| -> f64 {
            let mut vals: Vec<f64> = d
                .iter_rows()
                .filter(|row| pred.matches(q, row))
                .map(|row| row[2])
                .collect();
            agg.apply(&mut vals)
        };
        let preds: Vec<(Box<dyn PredicateFn>, Vec<f64>)> = vec![
            (Box::new(Range::new(vec![0], 3).unwrap()), vec![0.2, 0.5]),
            (
                Box::new(Range::new(vec![0, 1], 3).unwrap()),
                vec![0.1, 0.3, 0.6, 0.5],
            ),
            (
                Box::new(RotatedRect::new(0, 1, 3).unwrap()),
                vec![0.2, 0.2, 0.7, 0.6, 0.3],
            ),
            (Box::new(HalfSpace::new(0, 1, 3).unwrap()), vec![0.5, 0.1]),
        ];
        for (pred, q) in &preds {
            for agg in Aggregate::ALL {
                let got = eng.answer(pred.as_ref(), agg, q);
                let want = scan(pred.as_ref(), agg, q);
                assert!(
                    (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "{} on {:?}: {got} vs {want}",
                    agg.name(),
                    q
                );
            }
        }
    }

    /// `moments(pred, q).finish(agg)` must agree with `answer` on every
    /// index path (prefix-sum exact, candidate-verified, full scan) —
    /// the sharded gather math is only as good as this equivalence.
    #[test]
    fn moments_agree_with_answers_on_every_path() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i as f64 * 0.37) % 1.0,
                    (i as f64 * 0.71) % 1.0,
                    ((i * i) as f64 * 0.13) % 1.0,
                ]
            })
            .collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into(), "m".into()], &rows).unwrap();
        let eng = QueryEngine::new(&d, 2);
        let preds: Vec<(Box<dyn PredicateFn>, Vec<f64>)> = vec![
            (Box::new(Range::new(vec![0], 3).unwrap()), vec![0.2, 0.5]),
            (
                Box::new(Range::new(vec![0, 1], 3).unwrap()),
                vec![0.1, 0.3, 0.6, 0.5],
            ),
            (
                Box::new(RotatedRect::new(0, 1, 3).unwrap()),
                vec![0.2, 0.2, 0.7, 0.6, 0.3],
            ),
            (Box::new(HalfSpace::new(0, 1, 3).unwrap()), vec![0.5, 0.1]),
        ];
        for (pred, q) in &preds {
            let m = eng.moments(pred.as_ref(), q);
            for agg in [
                Aggregate::Count,
                Aggregate::Sum,
                Aggregate::Avg,
                Aggregate::Std,
            ] {
                let direct = eng.answer(pred.as_ref(), agg, q);
                let via = m.finish(agg).unwrap();
                assert!(
                    (direct - via).abs() < 1e-9 * (1.0 + direct.abs()),
                    "{} on {:?}: {direct} vs {via}",
                    agg.name(),
                    q
                );
            }
        }
    }

    /// Per-shard moments of a row partition merge to the whole table's
    /// moments — the exact-composition invariant sharding relies on.
    #[test]
    fn moments_compose_across_row_partitions() {
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i as f64 * 0.59) % 1.0, (i as f64 * 1.7) % 13.0])
            .collect();
        let d = Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap();
        let shards: Vec<Dataset> = (0..3)
            .map(|k| {
                let part: Vec<Vec<f64>> = rows.iter().skip(k).step_by(3).cloned().collect();
                Dataset::from_rows(vec!["a".into(), "m".into()], &part).unwrap()
            })
            .collect();
        let pred = Range::new(vec![0], 2).unwrap();
        let whole = QueryEngine::new(&d, 1);
        let engines: Vec<QueryEngine<'_>> = shards.iter().map(|s| QueryEngine::new(s, 1)).collect();
        for q in [[0.0, 1.0], [0.2, 0.5], [0.7, 0.1], [0.9, 0.4]] {
            let gathered = engines
                .iter()
                .fold(crate::aggregate::Moments::ZERO, |acc, e| {
                    acc.merge(e.moments(&pred, &q))
                });
            let direct = whole.moments(&pred, &q);
            assert_eq!(gathered.n, direct.n, "COUNT is bitwise under sharding");
            assert!((gathered.s - direct.s).abs() < 1e-9 * (1.0 + direct.s.abs()));
            assert!((gathered.s2 - direct.s2).abs() < 1e-9 * (1.0 + direct.s2.abs()));
        }
    }

    #[test]
    fn moment_labels_match_sequential_and_parallel() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let queries: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 50.0, 0.3]).collect();
        let seq = eng.label_moments_batch(&pred, &queries, 1);
        let par = eng.label_moments_batch(&pred, &queries, 4);
        assert_eq!(seq, par);
        assert_eq!(seq[7], eng.moments(&pred, &queries[7]));
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let mut scratch = Vec::new();
        for i in 0..20 {
            let q = [i as f64 / 25.0, 0.4];
            assert_eq!(
                eng.answer_with(&mut scratch, &pred, Aggregate::Median, &q),
                eng.answer(&pred, Aggregate::Median, &q)
            );
        }
    }

    #[test]
    #[should_panic(expected = "measure column")]
    fn bad_measure_panics() {
        let d = grid_data();
        let _ = QueryEngine::new(&d, 5);
    }

    /// A resumed engine must be indistinguishable from a fresh one:
    /// same sorted orders (including duplicate-value ties), same
    /// prefix-sum accumulation, bitwise-equal answers on every
    /// aggregate and index path.
    #[test]
    fn resumed_engine_matches_fresh_rebuild_bitwise() {
        // Deliberate duplicate values across the old/new boundary so the
        // merge's tie-breaking is exercised, plus an irrational-ish
        // measure so prefix sums are order-sensitive.
        let old_rows: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![((i % 10) as f64) / 10.0, (i as f64 * 0.731) % 5.0])
            .collect();
        let delta_rows: Vec<Vec<f64>> = (0..70)
            .map(|i| vec![((i % 13) as f64) / 10.0 % 1.0, (i as f64 * 1.177) % 7.0])
            .collect();
        let cols = vec!["a".into(), "m".into()];
        let mut data = Dataset::from_rows(cols.clone(), &old_rows).unwrap();
        let delta = Dataset::from_rows(cols.clone(), &delta_rows).unwrap();

        let snapshot = QueryEngine::new(&data, 1).into_snapshot();
        assert_eq!(snapshot.rows(), 150);
        assert_eq!(snapshot.measure(), 1);
        data.append(&delta).unwrap();
        let resumed = QueryEngine::resume(snapshot, &data).unwrap();
        let fresh = QueryEngine::new(&data, 1);

        // Index internals are identical, not just answer-equal.
        for (a, b) in resumed.index.iter().zip(&fresh.index) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.vals, b.vals);
            assert_eq!(a.prefix, b.prefix);
            assert_eq!(a.prefix2, b.prefix2);
        }
        let pred = Range::new(vec![0], 2).unwrap();
        for i in 0..40 {
            let q = [i as f64 / 45.0, 0.35];
            for agg in Aggregate::ALL {
                assert_eq!(
                    resumed.answer(&pred, agg, &q),
                    fresh.answer(&pred, agg, &q),
                    "{} at {q:?}",
                    agg.name()
                );
            }
            assert_eq!(resumed.moments(&pred, &q), fresh.moments(&pred, &q));
        }
    }

    #[test]
    fn resume_with_no_delta_is_identity() {
        let d = grid_data();
        let snapshot = QueryEngine::new(&d, 1).into_snapshot();
        let resumed = QueryEngine::resume(snapshot, &d).unwrap();
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.0, 0.5];
        assert_eq!(resumed.answer(&pred, Aggregate::Sum, &q), 10.0);
    }

    #[test]
    fn resume_rejects_shrunk_changed_and_reshaped_tables() {
        let d = grid_data();
        let snap = || QueryEngine::new(&d, 1).into_snapshot();

        let shrunk = d.take(5);
        assert_eq!(
            QueryEngine::resume(snap(), &shrunk).unwrap_err(),
            ResumeError::Shrunk {
                indexed: 10,
                got: 5
            }
        );

        let reshaped = d.project(&[0]).unwrap();
        assert_eq!(
            QueryEngine::resume(snap(), &reshaped).unwrap_err(),
            ResumeError::SchemaChanged { indexed: 2, got: 1 }
        );

        // Same shape, but an existing row was edited: not an append.
        let mut edited_rows: Vec<Vec<f64>> = d.iter_rows().map(|r| r.to_vec()).collect();
        edited_rows[3][1] = 99.0;
        let edited = Dataset::from_rows(vec!["a".into(), "m".into()], &edited_rows).unwrap();
        assert_eq!(
            QueryEngine::resume(snap(), &edited).unwrap_err(),
            ResumeError::PrefixChanged
        );
    }
}
