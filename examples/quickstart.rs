//! Quickstart: train a NeuroSketch on synthetic data and answer range
//! aggregate queries with a forward pass.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use datagen::simple::uniform;
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

fn main() {
    // 1. A dataset: 20k uniform rows over [0,1]^3; column 2 is the measure.
    let data = uniform(20_000, 3, 7);
    let engine = QueryEngine::new(&data, 2);

    // 2. A training workload: AVG of the measure over ranges on column 0.
    //    SELECT AVG(x2) FROM data WHERE c <= x0 < c + r
    let wl = Workload::generate(&WorkloadConfig {
        dims: 3,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 2_200,
        seed: 1,
    })
    .expect("valid workload");
    let (train, test) = wl.split(200);

    // 3. Build the sketch (labels computed once by exact scan).
    let cfg = NeuroSketchConfig::default();
    let t0 = std::time::Instant::now();
    let (sketch, report) = NeuroSketch::build(&engine, &wl.predicate, Aggregate::Avg, &train, &cfg)
        .expect("build succeeds");
    println!(
        "built {} partitions in {:.1}s (labeling {:.1}s, training {:.1}s)",
        sketch.partitions(),
        t0.elapsed().as_secs_f64(),
        report.labeling.as_secs_f64(),
        report.training.as_secs_f64()
    );
    println!(
        "model: {} parameters, {:.1} KiB (data: {:.0} KiB)",
        sketch.param_count(),
        sketch.storage_bytes() as f64 / 1024.0,
        (data.rows() * data.dims() * 8) as f64 / 1024.0
    );

    // 4. Answer queries without touching the data.
    let truth: Vec<f64> = test
        .iter()
        .map(|q| engine.answer(&wl.predicate, Aggregate::Avg, q))
        .collect();
    let t1 = std::time::Instant::now();
    let preds: Vec<f64> = test.iter().map(|q| sketch.answer(q)).collect();
    let per_query_us = t1.elapsed().as_secs_f64() * 1e6 / test.len() as f64;

    println!(
        "normalized MAE on {} held-out queries: {:.4}",
        test.len(),
        normalized_mae(&truth, &preds)
    );
    println!("per-query latency: {per_query_us:.1} us (exact scan touches all 20k rows)");

    let q = &test[0];
    println!(
        "\nexample: AVG(x2) WHERE {:.3} <= x0 < {:.3}  ->  sketch {:.4}, exact {:.4}",
        q[0],
        q[0] + q[1],
        sketch.answer(q),
        truth[0]
    );

    // The same query through the SQL front-end.
    let parsed = query::sql::parse("SELECT AVG(x2) FROM data WHERE x0 BETWEEN 0.25 AND 0.75")
        .expect("valid SQL");
    let (pred, qvec, agg, measure) = parsed.bind(&data).expect("columns resolve");
    let exact_sql = QueryEngine::new(&data, measure).answer(&pred, agg, &qvec);
    println!(
        "SQL front-end: SELECT AVG(x2) ... BETWEEN 0.25 AND 0.75 -> sketch {:.4}, exact {:.4}",
        sketch.answer(&qvec),
        exact_sql
    );
}
