//! Documentation link hygiene: every *relative* markdown link in the
//! repo's guides must point at a file that exists. CI runs this test in
//! its docs step, so a moved or renamed file fails the build instead of
//! silently dead-ending a reader.

use std::path::{Path, PathBuf};

/// Markdown files whose links are checked: everything at the repo root
/// plus the `docs/` tree.
fn markdown_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(root)
        .expect("repo root readable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    let docs = root.join("docs");
    if docs.is_dir() {
        files.extend(
            std::fs::read_dir(&docs)
                .expect("docs/ readable")
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "md")),
        );
    }
    files.sort();
    assert!(!files.is_empty(), "no markdown files found");
    files
}

/// Extract `](target)` markdown link targets from one line. Good enough
/// for the repo's hand-written markdown: no nested parentheses in paths.
fn link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = line[i + 2..].find(')') {
                out.push(line[i + 2..i + 2 + end].to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[test]
fn relative_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut dead = Vec::new();
    for file in markdown_files(root) {
        let text = std::fs::read_to_string(&file).expect("markdown readable");
        let mut in_code_fence = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_code_fence = !in_code_fence;
                continue;
            }
            if in_code_fence {
                continue;
            }
            for target in link_targets(line) {
                // External links, in-page anchors, and mailto are out of
                // scope; so is anything with a scheme.
                if target.starts_with('#')
                    || target.contains("://")
                    || target.starts_with("mailto:")
                {
                    continue;
                }
                // Strip an anchor suffix: `file.md#section` checks `file.md`.
                let path_part = target.split('#').next().unwrap_or("");
                if path_part.is_empty() {
                    continue;
                }
                let resolved = file
                    .parent()
                    .expect("markdown file has a parent")
                    .join(path_part);
                if !resolved.exists() {
                    dead.push(format!(
                        "{}:{}: dead relative link `{}`",
                        file.strip_prefix(root).unwrap_or(&file).display(),
                        lineno + 1,
                        target
                    ));
                }
            }
        }
    }
    assert!(
        dead.is_empty(),
        "dead documentation links:\n{}",
        dead.join("\n")
    );
}

#[test]
fn link_extraction_handles_basic_shapes() {
    assert_eq!(
        link_targets("see [the guide](docs/serving.md) and [api](https://x.y)"),
        vec!["docs/serving.md".to_string(), "https://x.y".to_string()]
    );
    assert!(link_targets("no links here").is_empty());
    assert_eq!(
        link_targets("[a](one.md#anchor)"),
        vec!["one.md#anchor".to_string()]
    );
}
