//! Load generation for the [`neurosketch::net`] protocol server:
//! spawn a serving loop over a [`LiveDeployment`], drive it with N
//! pipelined clients, and report throughput plus per-request latency
//! percentiles. Shared by the `netbench` binary and the
//! `net_serial_loop` / `net_saturation_qps` / `net_p50` / `net_p99`
//! entries of `BENCH_query.json`.

use neurosketch::deploy::LiveDeployment;
use neurosketch::net::{Frame, NetClient, NetOptions, NetServer};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A running protocol server: its address, the shutdown flag, and the
/// join handle returning the server (and its final stats).
pub struct ServerUnderTest {
    /// Where clients connect.
    pub addr: SocketAddr,
    /// Set to stop the serving loop.
    pub shutdown: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<NetServer>,
}

impl ServerUnderTest {
    /// Stop the loop and return the server.
    pub fn stop(self) -> NetServer {
        self.shutdown.store(true, Ordering::Relaxed);
        self.handle.join().expect("server thread")
    }
}

/// Bind an ephemeral loopback port and run [`NetServer::serve`] on a
/// background thread.
pub fn spawn_server(live: Arc<LiveDeployment>, dims: usize, opts: NetOptions) -> ServerUnderTest {
    let mut server =
        NetServer::bind("127.0.0.1:0", live, dims, opts).expect("bind loopback server");
    let addr = server.local_addr();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let handle = std::thread::spawn(move || {
        server.serve(&flag);
        server
    });
    ServerUnderTest {
        addr,
        shutdown,
        handle,
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct NetLoadReport {
    /// Requests answered.
    pub answered: usize,
    /// Requests refused with a typed reject frame (backpressure).
    pub rejected: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// Answered requests per second over the run's wall-clock.
    pub qps: f64,
    /// Median per-request latency (send → response), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency, milliseconds.
    pub p99_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

/// One client's share of the run: stream `queries` with up to `window`
/// requests outstanding, timestamping each send and its response.
/// Responses on a connection arrive in request order (the server
/// drains each connection FIFO), so a queue of send times pairs them.
fn client_run(addr: SocketAddr, queries: &[Vec<f64>], window: usize) -> (usize, usize, Vec<f64>) {
    let window = window.max(1);
    let mut client = NetClient::connect(addr).expect("connect load client");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("client timeout");
    let mut sent_at: VecDeque<Instant> = VecDeque::with_capacity(window);
    let mut latencies = Vec::with_capacity(queries.len());
    let mut answered = 0usize;
    let mut rejected = 0usize;
    let mut sent = 0usize;
    let mut received = 0usize;
    while received < queries.len() {
        while sent < queries.len() && sent - received < window {
            client.send_query(&queries[sent]).expect("send query");
            sent_at.push_back(Instant::now());
            sent += 1;
        }
        let frame = client.recv().expect("load response");
        let t0 = sent_at.pop_front().expect("response pairs a send");
        match frame {
            Frame::Answer { .. } => {
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                answered += 1;
            }
            Frame::Reject { .. } => rejected += 1,
            other => panic!("unexpected frame under load: {other:?}"),
        }
        received += 1;
    }
    (answered, rejected, latencies)
}

/// Drive `clients` concurrent connections, each streaming an
/// interleaved slice of `queries` with `window` requests outstanding,
/// and aggregate throughput + latency percentiles. `window == 1` with
/// one client is the serial request-per-round-trip baseline the
/// coalesced numbers are compared against.
pub fn run_load(
    addr: SocketAddr,
    queries: &[Vec<f64>],
    clients: usize,
    window: usize,
) -> NetLoadReport {
    let clients = clients.max(1);
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let slice: Vec<Vec<f64>> = queries.iter().skip(c).step_by(clients).cloned().collect();
            std::thread::spawn(move || client_run(addr, &slice, window))
        })
        .collect();
    let mut answered = 0usize;
    let mut rejected = 0usize;
    let mut latencies = Vec::with_capacity(queries.len());
    for w in workers {
        let (a, r, mut l) = w.join().expect("load client thread");
        answered += a;
        rejected += r;
        latencies.append(&mut l);
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    NetLoadReport {
        answered,
        rejected,
        elapsed_ms,
        qps: answered as f64 / (elapsed_ms / 1e3),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    }
}
