//! `netbench` — load generator for the NSKW protocol server.
//!
//! Self-contained mode (default): build the query-suite sketch, stand
//! up a loopback [`neurosketch::net::NetServer`] over a
//! `LiveDeployment`, and drive it with pipelined clients:
//!
//! ```text
//! netbench --fast                      # CI-smoke scale
//! netbench --clients 8 --window 128    # heavier concurrency
//! netbench --fast --serial             # also run the 1-client,
//!                                      # window-1 baseline + ratio
//! ```
//!
//! Remote mode: point it at an already-running server; the target's
//! query dimensionality is discovered over the wire with an info
//! frame, and uniform random queries of that dimensionality are sent:
//!
//! ```text
//! netbench --addr 127.0.0.1:7878 --queries 10000
//! ```
//!
//! Remote targets trained on non-unit domains take `--range LO:HI` —
//! once to scale every dimension, or repeated to give each dimension
//! its own interval (without it, queries land in the unit cube and a
//! target trained elsewhere serves nothing but empty ranges).

use bench::netload;
use bench::perf::scenarios;
use neurosketch::deploy::LiveDeployment;
use neurosketch::net::{NetClient, NetOptions};
use neurosketch::router::{DqdRouter, RoutingPolicy};
use neurosketch::serve::{ServeOptions, SketchServer};
use neurosketch::NeuroSketchConfig;
use std::sync::Arc;

const USAGE: &str = "usage: netbench [--fast] [--serial] [--clients N] [--window N] \
     [--queries N] [--addr HOST:PORT] [--range LO:HI]...";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut serial = false;
    let mut clients = 4usize;
    let mut window = 64usize;
    let mut queries = 0usize;
    let mut addr: Option<String> = None;
    let mut ranges: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => fast = true,
            "--serial" => serial = true,
            "--clients" => {
                i += 1;
                clients = parse(&args, i, "--clients");
            }
            "--window" => {
                i += 1;
                window = parse(&args, i, "--window");
            }
            "--queries" => {
                i += 1;
                queries = parse(&args, i, "--queries");
            }
            "--addr" => {
                i += 1;
                addr = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--addr needs HOST:PORT")),
                );
            }
            "--range" => {
                i += 1;
                ranges.push(parse_range(args.get(i).map(String::as_str)));
            }
            other => die(&format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    if queries == 0 {
        queries = if fast { 4_000 } else { 20_000 };
    }

    if addr.is_none() && !ranges.is_empty() {
        die("--range only applies to --addr mode (the local suite carries its own domain)");
    }
    match addr {
        Some(addr) => remote(&addr, clients, window, queries, &ranges),
        None => local(fast, serial, clients, window, queries),
    }
}

/// Build the tracked query-suite deployment, serve it on loopback, and
/// load it.
fn local(fast: bool, serial: bool, clients: usize, window: usize, queries: usize) {
    println!(
        "building query-suite sketch ({} scale)...",
        if fast { "--fast" } else { "full" }
    );
    let sc = scenarios::query_scenario(fast);
    let mut ns_cfg = NeuroSketchConfig::default();
    ns_cfg.train.epochs = if fast { 20 } else { 60 };
    let (sketch, build_report) =
        neurosketch::NeuroSketch::build_from_labeled(&sc.train, &sc.labels, &ns_cfg)
            .expect("sketch build");
    let router = DqdRouter::new(sketch, build_report.leaf_aqcs, RoutingPolicy::default());
    let server = SketchServer::new(
        router,
        ServeOptions {
            threads: 2,
            ..ServeOptions::default()
        },
    );
    let live = Arc::new(LiveDeployment::new(server, 0));
    let stream: Vec<Vec<f64>> = sc
        .wl
        .queries
        .iter()
        .cycle()
        .take(queries)
        .cloned()
        .collect();
    let under_test = netload::spawn_server(live, stream[0].len(), NetOptions::default());
    println!("serving on {}", under_test.addr);
    let load = netload::run_load(under_test.addr, &stream, clients, window);
    print_report(
        &format!("{clients} clients, window {window}"),
        &load,
        queries,
    );
    if serial {
        let base = netload::run_load(under_test.addr, &stream, 1, 1);
        print_report("serial baseline (1 client, window 1)", &base, queries);
        println!(
            "coalesced micro-batching: {:.2}x the serial loop",
            base.elapsed_ms / load.elapsed_ms
        );
    }

    let server = under_test.stop();
    let stats = server.stats();
    println!(
        "server: {} batches, largest {} queries, {} answered, {} rejected, {} protocol errors",
        stats.batches, stats.largest_batch, stats.answered, stats.rejected, stats.protocol_errors
    );
    println!(
        "server front: {} cache hits, {} cache misses, {} deduped in-batch",
        stats.cache_hits, stats.cache_misses, stats.deduped
    );
}

/// Load an external server, discovering its dimensionality on the wire.
fn remote(addr: &str, clients: usize, window: usize, queries: usize, ranges: &[(f64, f64)]) {
    let sock = std::net::ToSocketAddrs::to_socket_addrs(addr)
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| die("cannot resolve --addr"));
    let mut probe = NetClient::connect(sock).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let info = probe.info().unwrap_or_else(|e| die(&format!("info: {e}")));
    println!(
        "target {addr}: dims {}, generation {}, queue_cap {}, max_batch {}",
        info.dims, info.generation, info.queue_cap, info.max_batch
    );
    // Validate the flag count eagerly, the moment the target's
    // dimensionality is known — a lazy check inside the span lookup
    // would silently ignore extra --range flags (span never indexes
    // past dims), letting a typo go unnoticed.
    if ranges.len() > 1 && ranges.len() != info.dims {
        die(&format!(
            "{} --range flags for {} target dimensions (give one, or one per dimension)",
            ranges.len(),
            info.dims
        ));
    }
    // Deterministic uniform queries, scaled per dimension by --range
    // (default: the unit cube) — the target's accuracy is not under
    // test here, only its serving path.
    let span = |d: usize| -> (f64, f64) {
        match ranges {
            [] => (0.0, 1.0),
            [one] => *one,
            many => many[d],
        }
    };
    let stream: Vec<Vec<f64>> = (0..queries)
        .map(|i| {
            (0..info.dims)
                .map(|d| {
                    let (lo, hi) = span(d);
                    let u = ((i * (d + 3) * 2_654_435_761usize) % 1_000_000) as f64 / 1e6;
                    lo + u * (hi - lo)
                })
                .collect()
        })
        .collect();
    let load = netload::run_load(sock, &stream, clients, window);
    print_report(
        &format!("{clients} clients, window {window}"),
        &load,
        queries,
    );
}

fn print_report(label: &str, load: &netload::NetLoadReport, queries: usize) {
    println!(
        "{label}: {} of {queries} answered, {} rejected, {:.1} ms wall, {:.0} qps, \
         p50 {:.3} ms, p99 {:.3} ms",
        load.answered, load.rejected, load.elapsed_ms, load.qps, load.p50_ms, load.p99_ms
    );
}

/// Parse a `LO:HI` interval (both finite, `LO < HI`).
fn parse_range(arg: Option<&str>) -> (f64, f64) {
    fn bad() -> ! {
        die("--range needs LO:HI with finite LO < HI")
    }
    let arg = arg.unwrap_or_else(|| bad());
    let (lo, hi) = arg.split_once(':').unwrap_or_else(|| bad());
    let (lo, hi): (f64, f64) = match (lo.parse(), hi.parse()) {
        (Ok(lo), Ok(hi)) => (lo, hi),
        _ => bad(),
    };
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        bad();
    }
    (lo, hi)
}

fn parse(args: &[String], i: usize, flag: &str) -> usize {
    args.get(i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
