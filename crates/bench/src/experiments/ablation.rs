//! Ablations of NeuroSketch's design choices (beyond the paper's
//! Table 3): what the AQC merge score buys over alternatives, and what
//! magnitude pruning does to the accuracy/size trade-off.
//!
//! * **Merge score**: Alg. 3 merges the lowest-AQC leaves first. We
//!   compare against merging the *smallest* leaves first (size score) and
//!   a fixed arbitrary order (constant score), at identical partition
//!   budgets.
//! * **Pruning** (Sec. 7 future work): sweep the pruned-weight fraction
//!   and report error vs. sparse storage.

use crate::common::{default_workload, ExperimentContext};
use datagen::PaperDataset;
use neurosketch::NeuroSketch;
use nn::prune::{prune_magnitude, sparse_storage_bytes};
use nn::train::{train, TrainConfig};
use nn::Mlp;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use spatial::KdTree;

/// A boxed leaf-scoring closure used by the merge ablation.
type ScoreFn = Box<dyn Fn(&[usize]) -> f64 + Sync>;

/// One merge-strategy measurement.
#[derive(Debug, Clone)]
pub struct MergeRow {
    /// Strategy name.
    pub strategy: &'static str,
    /// Test normalized MAE.
    pub nmae: f64,
}

/// One pruning measurement.
#[derive(Debug, Clone)]
pub struct PruneRow {
    /// Fraction of weights zeroed.
    pub fraction: f64,
    /// Test normalized MAE after pruning.
    pub nmae: f64,
    /// Sparse storage estimate (KiB).
    pub storage_kib: f64,
}

/// Combined ablation results.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Merge-score comparison.
    pub merge: Vec<MergeRow>,
    /// Pruning sweep.
    pub prune: Vec<PruneRow>,
}

/// Run both ablations on VS.
pub fn run(ctx: &ExperimentContext) -> AblationResult {
    let (data, measure) = ctx.dataset(PaperDataset::Vs);
    let engine = QueryEngine::new(&data, measure);
    let wl = default_workload(
        PaperDataset::Vs,
        data.dims(),
        ctx.train_queries() + ctx.test_queries(),
        ctx.seed,
    );
    let (train_q, test_q) = wl.split(ctx.test_queries());
    let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &train_q, 4);
    let truth = engine.label_batch(&wl.predicate, Aggregate::Avg, &test_q, 4);

    // --- Merge-score ablation -------------------------------------------
    // Build the same height-4 tree, merge 16 -> 6 leaves with three
    // different scores, train identical models on the resulting
    // partitions by re-using NeuroSketch with target = leaves (no
    // internal merging), but where we pre-merge the tree ourselves we
    // emulate strategies through the score closure.
    let mut merge = Vec::new();
    let strategies: [(&'static str, ScoreFn); 3] = [
        (
            "AQC (paper)",
            Box::new({
                let qs = train_q.clone();
                let ls = labels.clone();
                move |ids: &[usize]| {
                    let sub_q: Vec<Vec<f64>> = ids.iter().map(|&i| qs[i].clone()).collect();
                    let sub_l: Vec<f64> = ids.iter().map(|&i| ls[i]).collect();
                    neurosketch::aqc::aqc_sampled(&sub_q, &sub_l, 5_000)
                }
            }),
        ),
        ("leaf size", Box::new(|ids: &[usize]| ids.len() as f64)),
        ("constant", Box::new(|_: &[usize]| 1.0)),
    ];
    for (name, score) in strategies {
        // Merge a fresh tree with this score.
        let mut tree = KdTree::build(&train_q, 4);
        tree.merge_leaves(&score, 6, ctx.ns_config().threads);
        // Train one model per merged leaf via build_from_labeled on each
        // leaf's queries, emulating the per-partition training.
        let mut cfg = ctx.ns_config();
        cfg.tree_height = 0;
        cfg.target_partitions = 1;
        let mut leaf_models = Vec::new();
        for leaf in tree.leaf_ids() {
            let ids = tree.leaf_queries(leaf);
            let qs: Vec<Vec<f64>> = ids.iter().map(|&i| train_q[i].clone()).collect();
            let ls: Vec<f64> = ids.iter().map(|&i| labels[i]).collect();
            let (m, _) = NeuroSketch::build_from_labeled(&qs, &ls, &cfg).expect("leaf build");
            leaf_models.push((leaf, m));
        }
        let preds: Vec<f64> = test_q
            .iter()
            .map(|q| {
                let leaf = tree.locate(q);
                leaf_models
                    .iter()
                    .find(|(l, _)| *l == leaf)
                    .map(|(_, m)| m.answer(q))
                    .expect("every leaf has a model")
            })
            .collect();
        merge.push(MergeRow {
            strategy: name,
            nmae: normalized_mae(&truth, &preds),
        });
    }

    // --- Pruning ablation ------------------------------------------------
    // A single model trained on the full workload, pruned progressively.
    let n = labels.len() as f64;
    let y_mean = labels.iter().sum::<f64>() / n;
    let y_std = (labels.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n)
        .sqrt()
        .max(1e-12);
    let ys: Vec<f64> = labels.iter().map(|y| (y - y_mean) / y_std).collect();
    let cfg = ctx.ns_config();
    let mut base = Mlp::new(&cfg.layer_sizes(train_q[0].len()), ctx.seed);
    let tcfg = TrainConfig {
        epochs: if ctx.fast { 40 } else { 200 },
        seed: ctx.seed,
        ..TrainConfig::default()
    };
    train(&mut base, &train_q, &ys, &tcfg);
    let mut prune = Vec::new();
    for fraction in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let mut pruned = base.clone();
        prune_magnitude(&mut pruned, fraction);
        let preds: Vec<f64> = test_q
            .iter()
            .map(|q| pruned.predict(q) * y_std + y_mean)
            .collect();
        prune.push(PruneRow {
            fraction,
            nmae: normalized_mae(&truth, &preds),
            storage_kib: sparse_storage_bytes(&pruned) as f64 / 1024.0,
        });
    }

    AblationResult { merge, prune }
}

/// Print both ablations.
pub fn print(res: &AblationResult) {
    println!("\n==== Ablation: merge score and pruning (VS, AVG) ====");
    println!("\nmerge score (16 -> 6 partitions):");
    for r in &res.merge {
        println!("  {:<12} nMAE {:.4}", r.strategy, r.nmae);
    }
    println!("\nmagnitude pruning of a single default-architecture model:");
    println!("  {:<10} {:>10} {:>12}", "pruned", "nMAE", "storage");
    for r in &res.prune {
        println!(
            "  {:<10.2} {:>10.4} {:>8.1} KiB",
            r.fraction, r.nmae, r.storage_kib
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_trades_error_for_space_monotonically_in_storage() {
        let ctx = ExperimentContext::fast();
        let res = run(&ctx);
        assert_eq!(res.merge.len(), 3);
        assert_eq!(res.prune.len(), 5);
        // Storage shrinks as the pruned fraction grows.
        for w in res.prune.windows(2) {
            assert!(w[1].storage_kib <= w[0].storage_kib + 1e-9);
        }
        // Unpruned model is at least as accurate as the 90%-pruned one.
        let first = res.prune.first().unwrap();
        let last = res.prune.last().unwrap();
        assert!(first.nmae <= last.nmae * 1.05 + 1e-9);
        // All merge strategies produce finite errors.
        for m in &res.merge {
            assert!(m.nmae.is_finite(), "{}", m.strategy);
        }
    }
}
