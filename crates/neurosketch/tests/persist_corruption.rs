//! Adversarial tests for the NSK2 persistent sketch format: every
//! corruption of a valid artifact — truncation anywhere, arbitrary byte
//! damage, implausible embedded dimensions — must come back as a typed
//! [`PersistError`], never a panic, and successful decodes must always
//! yield a servable sketch.
//!
//! Since container version 3 every artifact ends in an FNV-1a-64
//! trailer over the whole body, so arbitrary byte damage splits into
//! two regimes, both covered here: without repair the trailer catches
//! *every* flip ([`PersistError::TrailerMismatch`]); with the trailer
//! re-patched the damage reaches the section parsers — including the
//! f16/i8 quantized parameter payloads and their scale fields — which
//! must still fail typed or decode to a servable sketch.

use bytes::Bytes;
use neurosketch::persist::{self, PersistError};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use nn::QuantMode;
use proptest::prelude::*;

/// A small trained sketch and its NSK2 encoding in the given parameter
/// mode (built once per `(partitions, mode)`, shared across all
/// property cases).
fn artifact_bytes_mode(partitions: usize, mode: QuantMode) -> Vec<u8> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type ArtifactCache = Mutex<HashMap<(usize, u8), Vec<u8>>>;
    static CACHE: OnceLock<ArtifactCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap();
    cache
        .entry((partitions, mode.tag()))
        .or_insert_with(|| {
            let qs: Vec<Vec<f64>> = (0..160)
                .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
                .collect();
            let labels: Vec<f64> = qs.iter().map(|q| 7.0 * q[0] - 3.0 * q[1]).collect();
            let mut cfg = NeuroSketchConfig::small();
            cfg.tree_height = 2;
            cfg.target_partitions = partitions;
            cfg.train.epochs = 5;
            let (sketch, _) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
            persist::encode_sketch_with(&sketch, mode).to_vec()
        })
        .clone()
}

fn artifact_bytes(partitions: usize) -> Vec<u8> {
    artifact_bytes_mode(partitions, QuantMode::F32)
}

/// Recompute the trailing checksum after deliberate body damage, so the
/// corruption reaches the section parsers instead of the trailer.
fn patch_trailer(blob: &mut [u8]) {
    let body = blob.len() - 8;
    let sum = query::exec::fnv1a_64(blob[..body].iter().copied());
    blob[body..].copy_from_slice(&sum.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any strict prefix of a valid artifact is missing *something*, in
    /// every parameter mode; decode must report a typed error (and
    /// never a bad-magic error once the magic survived the cut).
    #[test]
    fn truncation_always_yields_typed_error(mode_idx in 0usize..3, frac in 0.0f64..1.0) {
        let blob = artifact_bytes_mode(4, QuantMode::ALL[mode_idx]);
        let cut = ((blob.len() - 1) as f64 * frac) as usize;
        let err = persist::decode(Bytes::from(blob[..cut].to_vec())).unwrap_err();
        if cut >= 12 {
            prop_assert!(
                !matches!(err, PersistError::BadMagic { .. }),
                "magic was intact at cut {cut}: {err}"
            );
        }
    }

    /// With the v3 trailer in place, *every* single-byte flip is caught:
    /// past the 8-byte magic/version prologue the error is specifically
    /// the integrity mismatch, and damage to the prologue itself is
    /// still a typed refusal — never a panic, never a silent decode.
    #[test]
    fn byte_flips_never_panic(
        mode_idx in 0usize..3,
        pos_frac in 0.0f64..1.0,
        flip in 1u32..256,
    ) {
        let mut blob = artifact_bytes_mode(2, QuantMode::ALL[mode_idx]);
        let pos = ((blob.len() - 1) as f64 * pos_frac) as usize;
        blob[pos] ^= flip as u8;
        let err = persist::decode(Bytes::from(blob)).unwrap_err();
        if pos >= 8 {
            prop_assert!(
                matches!(err, PersistError::TrailerMismatch { .. }),
                "flip at {pos} slipped past the trailer: {err}"
            );
        }
    }

    /// Byte damage that *repairs the trailer* reaches the section
    /// parsers — including the f16/i8 parameter payloads and their
    /// per-tensor scale fields. The parsers must fail typed or produce
    /// a sketch that still serves; flips that only moved a stored
    /// parameter may survive, silently-wrong structure may not.
    #[test]
    fn patched_body_damage_never_panics(
        mode_idx in 0usize..3,
        pos_frac in 0.0f64..1.0,
        flip in 1u32..256,
    ) {
        let mut blob = artifact_bytes_mode(2, QuantMode::ALL[mode_idx]);
        // Damage lands anywhere in the body past the header; the trailer
        // is then recomputed so the checksum no longer shields the parse.
        let lo = 12;
        let hi = blob.len() - 9;
        let pos = lo + ((hi - lo) as f64 * pos_frac) as usize;
        blob[pos] ^= flip as u8;
        patch_trailer(&mut blob);
        if let Ok(artifact) = persist::decode(Bytes::from(blob)) {
            prop_assert!(artifact.sketch.partitions() > 0);
            let _ = artifact.sketch.answer(&[0.25, 0.75]);
        }
    }

    /// Garbage of any length is rejected, not mis-parsed into a panic.
    #[test]
    fn random_garbage_is_rejected(bytes in prop::collection::vec(0u32..256, 0..256)) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        // Random garbage virtually never carries the NSK2 magic; if it
        // does, decode must still fail somewhere later — a 4-leaf model
        // section cannot appear by chance.
        prop_assert!(persist::decode(Bytes::from(raw)).is_err());
    }
}

/// The embedded NSK1 model blob declaring absurd layer dimensions is a
/// typed model error (checked size math), not an allocation attempt.
#[test]
fn embedded_layer_dim_overflow_is_typed() {
    // A single-partition sketch has the simplest layout: the first model
    // blob starts right after one leaf node and the model header.
    let qs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0, 0.5]).collect();
    let labels: Vec<f64> = qs.iter().map(|q| q[0]).collect();
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 0;
    cfg.target_partitions = 1;
    cfg.train.epochs = 2;
    let (sketch, _) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
    let mut blob = persist::encode_sketch(&sketch).to_vec();
    // Layout: header 12 + node_count 4 + leaf tag 1 + model_count 4 +
    // leaf u32 4 + y_mean 8 + y_std 8 + quant u8 1 + blob_len 4 =
    // offset 46; the NSK1 blob's layer table (out, in) sits 8 bytes
    // further.
    let first_dims = 46 + 8;
    blob[first_dims..first_dims + 8].copy_from_slice(&[0xFF; 8]);
    patch_trailer(&mut blob);
    let err = persist::decode(Bytes::from(blob)).unwrap_err();
    match err {
        PersistError::Model(msg) => {
            assert!(
                msg.contains("overflow") || msg.contains("truncated"),
                "unexpected model error: {msg}"
            );
        }
        other => panic!("expected a model error, got {other}"),
    }
}

/// A version bump is refused up front with the found version reported
/// (before the trailer check — an unknown future version may not even
/// have one).
#[test]
fn future_version_reports_found_version() {
    let mut blob = artifact_bytes(2);
    blob[4..8].copy_from_slice(&7u32.to_le_bytes());
    match persist::decode(Bytes::from(blob)).unwrap_err() {
        PersistError::UnsupportedVersion { found } => assert_eq!(found, 7),
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
}

/// Flipping the quant tag of a model record to a different *valid* mode
/// (with the trailer repaired) must not silently misread the payload:
/// the embedded blob's own magic disagrees with the declared mode.
#[test]
fn mode_tag_mismatch_is_structural_corruption() {
    // Single leaf, so the record layout is fixed: the first record's
    // quant byte sits at offset 41 (12 + 4 + 1 + 4 + 4 + 8 + 8).
    let qs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0, 0.5]).collect();
    let labels: Vec<f64> = qs.iter().map(|q| q[0]).collect();
    let mut cfg = NeuroSketchConfig::small();
    cfg.tree_height = 0;
    cfg.target_partitions = 1;
    cfg.train.epochs = 2;
    let (sketch, _) = NeuroSketch::build_from_labeled(&qs, &labels, &cfg).unwrap();
    let mut blob = persist::encode_sketch_with(&sketch, QuantMode::I8).to_vec();
    let quant_at = 41;
    assert_eq!(blob[quant_at], QuantMode::I8.tag());
    blob[quant_at] = QuantMode::F16.tag();
    patch_trailer(&mut blob);
    match persist::decode(Bytes::from(blob)).unwrap_err() {
        PersistError::Corrupt(msg) => {
            assert!(msg.contains("f16") && msg.contains("i8"), "{msg}");
        }
        other => panic!("expected Corrupt, got {other}"),
    }
}
