//! The cluster fault-injection tier: every injected fault — replica
//! kill, stale generation, torn manifest, checksum-corrupt artifact —
//! must produce a **typed** outcome (a degraded report or a
//! [`ClusterError`], never a panic), every scenario must replay
//! bitwise-identically from its seed at any thread count, and the
//! cluster's happy path must stay bitwise a single-box
//! [`ShardedServer`]: through failover, through a rolling upgrade
//! (one generation per batch, never blended), and through a row-stable
//! K→2K rebalance.

use neurosketch::cache::CachePolicy;
use neurosketch::cluster::{
    Cluster, ClusterError, ClusterEvent, ClusterOptions, Fault, FaultPlan, RoutePolicy, UpgradeStep,
};
use neurosketch::maintenance::retrain_shards;
use neurosketch::persist;
use neurosketch::serve::ServeOptions;
use neurosketch::shard::{build_sharded, ShardPlan, ShardedServer, ShardedSketch};
use neurosketch::NeuroSketchConfig;
use proptest::prelude::*;
use query::aggregate::Aggregate;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

const SHARDS: usize = 3;

fn cfg() -> NeuroSketchConfig {
    let mut cfg = NeuroSketchConfig::small();
    cfg.train.epochs = 6;
    cfg
}

/// One 3-shard AVG deployment plus the drifted table a refresh
/// retrains against. Built once, shared by every test.
struct Base {
    wl: Workload,
    sharded: ShardedSketch,
    grown: datagen::Dataset,
}

fn base() -> &'static Base {
    static BASE: OnceLock<Base> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut data = datagen::simple::uniform(600, 2, 7);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 80,
            seed: 11,
        })
        .unwrap();
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: SHARDS },
            &wl.predicate,
            Aggregate::Avg,
            &wl.queries,
            &cfg(),
        )
        .unwrap();
        data.append(&datagen::simple::drift_batch(300, 2, 1.0, 0.3, 19))
            .unwrap();
        Base {
            wl,
            sharded,
            grown: data,
        }
    })
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn opts(quorum: f64) -> ClusterOptions {
    ClusterOptions {
        threads: 4,
        quorum,
        ..ClusterOptions::default()
    }
}

fn single_box(sketch: &ShardedSketch) -> Vec<f64> {
    ShardedServer::new(sketch.clone(), ServeOptions::default())
        .answer_batch(&base().wl.queries)
        .0
}

#[test]
fn healthy_cluster_is_bitwise_a_single_box() {
    let b = base();
    let expect = single_box(&b.sharded);
    for policy in [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastLoaded,
        RoutePolicy::GenerationAware,
    ] {
        let mut cluster = Cluster::new(&b.sharded, 2, 0, policy, opts(1.0)).unwrap();
        let (answers, report) = cluster.answer_batch(&b.wl.queries).unwrap();
        assert_eq!(answers, expect, "policy {policy:?} drifted from single-box");
        assert!(!report.stale);
        assert_eq!(report.covered, SHARDS);
        assert_eq!(report.failovers, 0);
    }
}

/// The pre-transposed per-replica serving layout
/// ([`ClusterOptions::layout`]) is a pure speed knob: scattering
/// through the padded GEMM path is bitwise identical to the plain
/// path at every thread count — and both match the single box.
#[test]
fn replica_serving_layout_is_bitwise_invisible() {
    let b = base();
    let expect = single_box(&b.sharded);
    for threads in [1usize, 4] {
        let mut answers = Vec::new();
        for layout in [false, true] {
            let mut cluster = Cluster::new(
                &b.sharded,
                2,
                0,
                RoutePolicy::RoundRobin,
                ClusterOptions {
                    threads,
                    layout,
                    ..ClusterOptions::default()
                },
            )
            .unwrap();
            answers.push(cluster.answer_batch(&b.wl.queries).unwrap().0);
        }
        assert_eq!(
            answers[0], answers[1],
            "layout on/off diverged at {threads} threads"
        );
        assert_eq!(answers[1], expect, "layout path drifted from single-box");
    }
}

#[test]
fn mid_batch_kill_fails_over_bitwise_transparently() {
    let b = base();
    let expect = single_box(&b.sharded);
    let plan = FaultPlan {
        seed: 0,
        faults: vec![Fault::Kill {
            batch: 0,
            group: 0,
            replica: 0,
        }],
    };
    let mut cluster = Cluster::new(&b.sharded, 2, 0, RoutePolicy::LeastLoaded, opts(1.0))
        .unwrap()
        .with_faults(plan);
    for batch in 0..3u64 {
        let (answers, report) = cluster.answer_batch(&b.wl.queries).unwrap();
        assert_eq!(answers, expect, "batch {batch} drifted through the kill");
        assert_eq!(report.covered, SHARDS, "batch {batch} lost coverage");
        if batch == 0 {
            assert_eq!(report.failovers, 1, "the mid-batch kill must fail over");
        }
    }
    let events = cluster.take_events();
    assert!(events.contains(&ClusterEvent::ReplicaKilled {
        batch: 0,
        group: 0,
        replica: 0,
    }));
    // LeastLoaded had routed group 0 to replica 0 (fewest served, lowest
    // index) when the kill landed mid-batch — so batch 0 failed over.
    assert!(
        events.iter().any(|e| matches!(
            e,
            ClusterEvent::Failover {
                batch: 0,
                group: 0,
                from: 0,
                to: 1
            }
        )),
        "expected a failover at the kill batch, got {events:?}"
    );
}

#[test]
fn losing_every_replica_of_a_group_is_typed_quorum_loss() {
    let b = base();
    let kill_group0 = FaultPlan {
        seed: 0,
        faults: vec![
            Fault::Kill {
                batch: 0,
                group: 0,
                replica: 0,
            },
            Fault::Kill {
                batch: 0,
                group: 0,
                replica: 1,
            },
        ],
    };

    // Full quorum: the batch must fail typed, not panic or half-answer.
    let mut strict = Cluster::new(&b.sharded, 2, 0, RoutePolicy::RoundRobin, opts(1.0))
        .unwrap()
        .with_faults(kill_group0.clone());
    match strict.answer_batch(&b.wl.queries) {
        Err(ClusterError::QuorumLost {
            covered,
            needed,
            groups,
        }) => {
            assert_eq!((covered, needed, groups), (SHARDS - 1, SHARDS, SHARDS));
        }
        other => panic!("expected QuorumLost, got {other:?}"),
    }

    // Relaxed quorum: a partial answer, with the gap visible in the
    // report and the uncovered group logged.
    let mut relaxed = Cluster::new(&b.sharded, 2, 0, RoutePolicy::RoundRobin, opts(0.5))
        .unwrap()
        .with_faults(kill_group0);
    let (answers, report) = relaxed.answer_batch(&b.wl.queries).unwrap();
    assert_eq!(report.covered, SHARDS - 1);
    assert_eq!(report.chosen[0], None);
    assert!(answers.iter().all(|a| a.is_finite()));
    assert!(relaxed
        .events()
        .iter()
        .any(|e| matches!(e, ClusterEvent::GroupUncovered { group: 0, .. })));
}

/// A degraded batch (quorum met, a group uncovered) must bypass the
/// answer cache in both directions: its partial answers — uncovered
/// groups fold zero moments into every query — are never stored where
/// a later healthy batch at the same generation would serve them as
/// hits, and warm full answers are never served into it (which would
/// contradict its report's `covered` count). Both clusters below share
/// one fault plan; the cached one must stay bitwise the uncached one
/// through warm, degraded, and repeat-degraded batches.
#[test]
fn degraded_batches_bypass_the_answer_cache_both_ways() {
    let b = base();
    let expect = single_box(&b.sharded);
    let kill_group0_at_batch2 = FaultPlan {
        seed: 0,
        faults: vec![
            Fault::Kill {
                batch: 2,
                group: 0,
                replica: 0,
            },
            Fault::Kill {
                batch: 2,
                group: 0,
                replica: 1,
            },
        ],
    };
    let mut cached = Cluster::new(
        &b.sharded,
        2,
        0,
        RoutePolicy::RoundRobin,
        ClusterOptions {
            cache: CachePolicy::cached(1 << 20),
            ..opts(0.5)
        },
    )
    .unwrap()
    .with_faults(kill_group0_at_batch2.clone());
    let mut plain = Cluster::new(&b.sharded, 2, 0, RoutePolicy::RoundRobin, opts(0.5))
        .unwrap()
        .with_faults(kill_group0_at_batch2);

    // Batches 0 and 1 are healthy; batch 1 is served warm.
    for batch in 0..2u64 {
        let (answers, report) = cached.answer_batch(&b.wl.queries).unwrap();
        assert_eq!(answers, plain.answer_batch(&b.wl.queries).unwrap().0);
        assert_eq!(answers, expect, "healthy batch {batch} drifted");
        assert_eq!(report.covered, SHARDS);
        if batch == 1 {
            assert!(report.cache_hits > 0, "the repeat batch must hit");
        }
    }
    let warm = cached.cache_stats().unwrap();

    // The kills land at batch 2 and the replicas stay dead: every
    // batch from here on is degraded. Degraded answers must match the
    // uncached cluster bitwise (no warm full answers served into a
    // partial batch) and the cache must not move (no partial answers
    // stored, no hits granted).
    for batch in 2..4u64 {
        let (answers, report) = cached.answer_batch(&b.wl.queries).unwrap();
        assert_eq!(
            answers,
            plain.answer_batch(&b.wl.queries).unwrap().0,
            "degraded batch {batch} diverged from the uncached cluster"
        );
        assert_eq!(report.covered, SHARDS - 1);
        assert_eq!(
            (report.cache_hits, report.cache_misses),
            (0, 0),
            "degraded batch {batch} must not touch the cache"
        );
    }
    let after = cached.cache_stats().unwrap();
    assert_eq!(
        (after.insertions, after.hits),
        (warm.insertions, warm.hits),
        "degraded batches must neither insert nor hit"
    );
}

/// Land a generation-1 refresh of every shard at `dir` and return
/// `(manifest path, gen-0 loaded sketch, gen-1 loaded sketch)`.
fn two_generations(dir: &PathBuf) -> (PathBuf, ShardedSketch, ShardedSketch) {
    let b = base();
    let manifest = persist::save_sharded(dir, &b.sharded).unwrap();
    let gen0 = persist::load_sharded(&manifest).unwrap();
    let mut refreshed = b.sharded.clone();
    retrain_shards(
        &mut refreshed,
        &b.grown,
        1,
        &b.wl.predicate,
        &b.wl.queries,
        &cfg(),
        &[0, 1, 2],
    )
    .unwrap();
    persist::save_refreshed(&manifest, &refreshed, &[0, 1, 2]).unwrap();
    let gen1 = persist::load_sharded(&manifest).unwrap();
    (manifest, gen0, gen1)
}

#[test]
fn rolling_upgrade_serves_one_generation_at_a_time_with_stale_flag() {
    let b = base();
    let dir = fresh_dir("cluster_rolling_upgrade_test");
    let (manifest, gen0, gen1) = two_generations(&dir);
    let gen0_expect = single_box(&gen0);
    let gen1_expect = single_box(&gen1);
    assert_ne!(gen0_expect, gen1_expect, "refresh changed nothing");

    let mut cluster = Cluster::new(&gen0, 2, 0, RoutePolicy::GenerationAware, opts(1.0)).unwrap();

    // One replica upgraded: generation 1 cannot cover quorum yet, so
    // the batch serves generation 0 — flagged stale, bitwise gen-0,
    // never a blend.
    let step = cluster.rolling_upgrade_step(&manifest).unwrap();
    assert!(
        matches!(step, UpgradeStep::Upgraded { from: 0, to: 1, .. }),
        "got {step:?}"
    );
    let (mid_answers, mid_report) = cluster.answer_batch(&b.wl.queries).unwrap();
    assert_eq!(
        mid_answers, gen0_expect,
        "mid-roll batch blended generations"
    );
    assert!(mid_report.stale);
    assert_eq!((mid_report.generation, mid_report.latest), (0, 1));
    assert!(cluster.events().iter().any(|e| matches!(
        e,
        ClusterEvent::ServedStale {
            served: 0,
            latest: 1,
            ..
        }
    )));

    // Roll to completion: every replica lands on generation 1 and the
    // staleness flag clears.
    let steps = cluster.rolling_upgrade(&manifest).unwrap();
    assert!(matches!(
        steps.last(),
        Some(UpgradeStep::Done { generation: 1 })
    ));
    let (answers, report) = cluster.answer_batch(&b.wl.queries).unwrap();
    assert_eq!(answers, gen1_expect);
    assert!(!report.stale);
    assert_eq!(report.generation, 1);
    for group in cluster.groups() {
        for replica in group.replicas() {
            assert_eq!(replica.generation(), 1);
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn upgrade_faults_are_typed_and_repairable() {
    let b = base();
    let dir = fresh_dir("cluster_upgrade_faults_test");
    let (manifest, gen0, gen1) = two_generations(&dir);
    let gen1_expect = single_box(&gen1);

    let plan = FaultPlan {
        seed: 0,
        faults: vec![
            Fault::StaleGeneration {
                group: 0,
                replica: 0,
            },
            Fault::TornManifest {
                group: 1,
                replica: 0,
            },
            Fault::CorruptArtifact {
                group: 2,
                replica: 0,
            },
        ],
    };
    let mut cluster = Cluster::new(&gen0, 2, 0, RoutePolicy::GenerationAware, opts(1.0))
        .unwrap()
        .with_faults(plan);
    let steps = cluster.rolling_upgrade(&manifest).unwrap();
    assert!(steps.contains(&UpgradeStep::PinnedStale {
        group: 0,
        replica: 0,
        generation: 0,
    }));
    assert!(steps.contains(&UpgradeStep::Torn {
        group: 1,
        replica: 0,
        generation: 0,
    }));
    assert!(steps.contains(&UpgradeStep::Corrupt {
        group: 2,
        replica: 0,
    }));
    assert!(matches!(
        steps.last(),
        Some(UpgradeStep::Done { generation: 1 })
    ));

    // Each group still has its replica-1 at generation 1, so serving
    // converged — around the faulted replicas, never through them.
    let (answers, report) = cluster.answer_batch(&b.wl.queries).unwrap();
    assert_eq!(answers, gen1_expect);
    assert!(!report.stale);
    assert_eq!(report.chosen, vec![Some(1), Some(1), Some(1)]);

    // Operator repair brings all three back to generation 1.
    for group in 0..SHARDS {
        let gen = cluster.repair_replica(group, 0, &manifest).unwrap();
        assert_eq!(gen, 1);
    }
    for group in cluster.groups() {
        for replica in group.replicas() {
            assert_eq!(replica.generation(), 1);
            assert!(!replica.pinned());
        }
    }
    let (answers, _) = cluster.answer_batch(&b.wl.queries).unwrap();
    assert_eq!(answers, gen1_expect);

    std::fs::remove_dir_all(&dir).ok();
}

/// A fault plan serialized into this test file. Parsing it back and
/// replaying it must reproduce the exact same failure sequence — same
/// events, same answers — at any thread count.
const EMBEDDED_PLAN: &str = r#"{
  "seed": 99,
  "faults": [
    { "Kill": { "batch": 1, "group": 0, "replica": 0 } },
    { "StaleGeneration": { "group": 1, "replica": 0 } },
    { "CorruptArtifact": { "group": 2, "replica": 1 } },
    { "Kill": { "batch": 3, "group": 2, "replica": 0 } }
  ]
}"#;

/// Drive one full scenario — serve, roll, serve — under `threads` and
/// return everything observable.
fn run_embedded_scenario(
    threads: usize,
    manifest: &PathBuf,
    gen0: &ShardedSketch,
) -> (Vec<Vec<f64>>, Vec<ClusterEvent>, Vec<UpgradeStep>) {
    let b = base();
    let plan: FaultPlan = serde_json::from_str(EMBEDDED_PLAN).unwrap();
    let mut cluster = Cluster::new(
        gen0,
        2,
        0,
        RoutePolicy::RoundRobin,
        ClusterOptions {
            threads,
            quorum: 0.5,
            ..ClusterOptions::default()
        },
    )
    .unwrap()
    .with_faults(plan);
    let mut answers = Vec::new();
    for _ in 0..2 {
        answers.push(cluster.answer_batch(&b.wl.queries).unwrap().0);
    }
    let steps = cluster.rolling_upgrade(manifest).unwrap();
    for _ in 0..2 {
        answers.push(cluster.answer_batch(&b.wl.queries).unwrap().0);
    }
    (answers, cluster.take_events(), steps)
}

#[test]
fn embedded_fault_plan_replays_identically_at_any_thread_count() {
    let dir = fresh_dir("cluster_embedded_replay_test");
    let (manifest, gen0, _) = two_generations(&dir);

    let plan: FaultPlan = serde_json::from_str(EMBEDDED_PLAN).unwrap();
    assert_eq!(plan.seed, 99);
    assert_eq!(plan.faults.len(), 4);
    assert_eq!(
        serde_json::from_str::<FaultPlan>(&serde_json::to_string(&plan).unwrap()).unwrap(),
        plan,
        "the embedded plan must roundtrip through serde unchanged"
    );

    let (answers_t1, events_t1, steps_t1) = run_embedded_scenario(1, &manifest, &gen0);
    let (answers_t4, events_t4, steps_t4) = run_embedded_scenario(4, &manifest, &gen0);
    assert_eq!(answers_t1, answers_t4, "answers depend on thread count");
    assert_eq!(events_t1, events_t4, "event log depends on thread count");
    assert_eq!(steps_t1, steps_t4, "upgrade steps depend on thread count");

    // The exact failure sequence the plan encodes, replayed: the batch-1
    // kill lands, the stale pin and the corrupt artifact intercept the
    // roll, and the batch-3 kill fires in the post-upgrade serving.
    assert!(events_t1.contains(&ClusterEvent::ReplicaKilled {
        batch: 1,
        group: 0,
        replica: 0,
    }));
    assert!(events_t1.contains(&ClusterEvent::ReplicaKilled {
        batch: 3,
        group: 2,
        replica: 0,
    }));
    assert!(events_t1.iter().any(|e| matches!(
        e,
        ClusterEvent::UpgradePinnedStale {
            group: 1,
            replica: 0,
            ..
        }
    )));
    assert!(steps_t1.contains(&UpgradeStep::Corrupt {
        group: 2,
        replica: 1,
    }));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generated_plans_replay_identically_from_their_seed() {
    let b = base();
    for seed in [1u64, 2, 3] {
        let run = |threads: usize| {
            let plan = FaultPlan::generate(seed, SHARDS, 2, 4, 6);
            let mut cluster = Cluster::new(
                &b.sharded,
                2,
                0,
                RoutePolicy::RoundRobin,
                ClusterOptions {
                    threads,
                    quorum: 0.5,
                    ..ClusterOptions::default()
                },
            )
            .unwrap()
            .with_faults(plan);
            let mut out = Vec::new();
            for _ in 0..4 {
                // Quorum may be typed-lost under an aggressive plan;
                // capture either outcome — both must replay.
                match cluster.answer_batch(&b.wl.queries) {
                    Ok((answers, report)) => out.push(Ok((answers, report))),
                    Err(e) => out.push(Err(format!("{e}"))),
                }
            }
            (out, cluster.take_events())
        };
        assert_eq!(run(1), run(4), "seed {seed} replay diverged across threads");
    }
}

/// Satellite: K→2K rebalance is bitwise invariant for every
/// moment-composable aggregate, and a fully materialized rebalance is
/// bitwise a fresh fine-grained build.
#[test]
fn rebalance_is_bitwise_invariant_for_all_aggregates() {
    let data = datagen::simple::uniform(240, 2, 5);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 40,
        seed: 9,
    })
    .unwrap();
    let mut small = NeuroSketchConfig::small();
    small.train.epochs = 4;
    for agg in [
        Aggregate::Count,
        Aggregate::Sum,
        Aggregate::Avg,
        Aggregate::Std,
    ] {
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 2 },
            &wl.predicate,
            agg,
            &wl.queries,
            &small,
        )
        .unwrap();
        let expect = ShardedServer::new(sharded.clone(), ServeOptions::default())
            .answer_batch(&wl.queries)
            .0;
        let mut cluster = Cluster::new(&sharded, 2, 0, RoutePolicy::RoundRobin, opts(1.0)).unwrap();
        let (before, _) = cluster.answer_batch(&wl.queries).unwrap();
        assert_eq!(
            before,
            expect,
            "{} cluster drifted pre-rebalance",
            agg.name()
        );

        let refined = cluster.rebalance(2).unwrap();
        assert_eq!(refined, ShardPlan::RoundRobin { shards: 4 });
        assert_eq!(cluster.groups()[0].logical(), &[0, 2]);
        assert_eq!(cluster.groups()[1].logical(), &[1, 3]);
        let (after, _) = cluster.answer_batch(&wl.queries).unwrap();
        assert_eq!(after, expect, "{} rebalance changed answers", agg.name());
    }
}

#[test]
fn materialized_rebalance_is_bitwise_a_fresh_fine_build() {
    let data = datagen::simple::uniform(240, 2, 5);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 40,
        seed: 9,
    })
    .unwrap();
    let mut small = NeuroSketchConfig::small();
    small.train.epochs = 4;
    let (coarse, _) = build_sharded(
        &data,
        1,
        &ShardPlan::RoundRobin { shards: 2 },
        &wl.predicate,
        Aggregate::Avg,
        &wl.queries,
        &small,
    )
    .unwrap();
    let mut cluster = Cluster::new(&coarse, 2, 0, RoutePolicy::RoundRobin, opts(1.0)).unwrap();
    cluster.rebalance(2).unwrap();
    while let Some(i) = cluster.groups().iter().position(|g| g.logical().len() > 1) {
        cluster
            .materialize_group(i, &data, 1, &wl.predicate, &wl.queries, &small)
            .unwrap();
    }
    assert_eq!(cluster.groups().len(), 4);
    for (i, group) in cluster.groups().iter().enumerate() {
        assert_eq!(group.logical(), &[i], "groups out of gather order");
    }

    let (fine, _) = build_sharded(
        &data,
        1,
        &ShardPlan::RoundRobin { shards: 4 },
        &wl.predicate,
        Aggregate::Avg,
        &wl.queries,
        &small,
    )
    .unwrap();
    let expect = ShardedServer::new(fine, ServeOptions::default())
        .answer_batch(&wl.queries)
        .0;
    let (answers, _) = cluster.answer_batch(&wl.queries).unwrap();
    assert_eq!(
        answers, expect,
        "materialized 2→4 cluster is not bitwise a fresh 4-shard build"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plan refinement is row-stable for any round-robin K, factor, and
    /// table size: every refined shard's rows are a subset of the
    /// coarse shard they came from.
    #[test]
    fn refinement_is_row_stable(k in 1usize..6, factor in 1usize..5, rows in 1usize..500) {
        let coarse = ShardPlan::RoundRobin { shards: k };
        let fine = coarse.refine(factor).unwrap();
        prop_assert_eq!(fine.shards(), k * factor);
        for row in 0..rows {
            prop_assert_eq!(
                fine.assign(row, rows) % k,
                coarse.assign(row, rows),
                "row {} escaped its coarse shard", row
            );
        }
    }

    /// Non-round-robin plans refuse to refine, typed.
    #[test]
    fn non_round_robin_refinement_is_typed(k in 1usize..6, seed in 0u64..32) {
        prop_assert!(ShardPlan::Blocks { shards: k }.refine(2).is_err());
        prop_assert!(ShardPlan::Hash { shards: k, seed }.refine(2).is_err());
    }
}
