//! Magnitude-based weight pruning.
//!
//! The paper's conclusion lists "model pruning methods \[11\] to remove
//! unimportant model weights for faster evaluation time" as future work;
//! this module implements the standard magnitude-pruning baseline from
//! that literature (Blalock et al. 2020): zero the smallest-magnitude
//! fraction of weights, optionally fine-tune afterwards.

use crate::mlp::Mlp;

/// Result of a pruning pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneReport {
    /// Weights zeroed by this pass.
    pub zeroed: usize,
    /// Nonzero weights remaining (biases excluded).
    pub remaining: usize,
    /// The magnitude threshold applied.
    pub threshold: f64,
}

/// Zero the `fraction` (0..=1) of smallest-magnitude *weights* (biases
/// are kept — they are few and cheap). Returns what was done.
///
/// # Panics
/// Panics if `fraction` is outside `[0, 1]`.
pub fn prune_magnitude(mlp: &mut Mlp, fraction: f64) -> PruneReport {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut mags: Vec<f64> = mlp
        .layers()
        .iter()
        .flat_map(|l| l.weights.as_slice().iter().map(|w| w.abs()))
        .filter(|m| *m > 0.0)
        .collect();
    if mags.is_empty() {
        return PruneReport {
            zeroed: 0,
            remaining: 0,
            threshold: 0.0,
        };
    }
    let k = ((mags.len() as f64) * fraction) as usize;
    if k == 0 {
        return PruneReport {
            zeroed: 0,
            remaining: mags.len(),
            threshold: 0.0,
        };
    }
    let idx = (k - 1).min(mags.len() - 1);
    let (_, thr, _) = mags.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("no NaN"));
    let threshold = *thr;
    let mut zeroed = 0usize;
    let mut remaining = 0usize;
    for layer in mlp.layers_mut() {
        for w in layer.weights.as_mut_slice() {
            if *w != 0.0 && w.abs() <= threshold && zeroed < k {
                *w = 0.0;
                zeroed += 1;
            } else if *w != 0.0 {
                remaining += 1;
            }
        }
    }
    PruneReport {
        zeroed,
        remaining,
        threshold,
    }
}

/// Count nonzero weights (biases excluded).
pub fn nonzero_weights(mlp: &Mlp) -> usize {
    mlp.layers()
        .iter()
        .map(|l| l.weights.as_slice().iter().filter(|w| **w != 0.0).count())
        .sum()
}

/// Storage estimate for a sparse (CSR-style) encoding: 4 bytes per
/// nonzero value + 2 bytes per column index + biases.
pub fn sparse_storage_bytes(mlp: &Mlp) -> usize {
    let nnz = nonzero_weights(mlp);
    let biases: usize = mlp.layers().iter().map(|l| l.biases.len()).sum();
    nnz * 6 + biases * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, TrainConfig};

    fn trained() -> (Mlp, Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 / 20.0, (i / 20) as f64 / 10.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 0.7 - x[1] * 0.2).collect();
        let mut mlp = Mlp::new(&[2, 24, 24, 1], 3);
        train(
            &mut mlp,
            &xs,
            &ys,
            &TrainConfig {
                epochs: 200,
                ..TrainConfig::default()
            },
        );
        (mlp, xs, ys)
    }

    #[test]
    fn zero_fraction_is_identity() {
        let (mut mlp, xs, _) = trained();
        let before: Vec<f64> = xs.iter().take(5).map(|x| mlp.predict(x)).collect();
        let report = prune_magnitude(&mut mlp, 0.0);
        assert_eq!(report.zeroed, 0);
        let after: Vec<f64> = xs.iter().take(5).map(|x| mlp.predict(x)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn pruning_reduces_nonzeros_proportionally() {
        let (mut mlp, _, _) = trained();
        let before = nonzero_weights(&mlp);
        let report = prune_magnitude(&mut mlp, 0.5);
        let after = nonzero_weights(&mlp);
        assert_eq!(after, report.remaining);
        assert!(after < before);
        let ratio = after as f64 / before as f64;
        assert!((0.35..=0.65).contains(&ratio), "ratio {ratio}");
        assert!(sparse_storage_bytes(&mlp) < before * 6 + 49 * 4);
    }

    #[test]
    fn moderate_pruning_keeps_function_close() {
        let (mut mlp, xs, ys) = trained();
        let err_before: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (mlp.predict(x) - y).abs())
            .sum::<f64>()
            / xs.len() as f64;
        prune_magnitude(&mut mlp, 0.3);
        let err_after: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (mlp.predict(x) - y).abs())
            .sum::<f64>()
            / xs.len() as f64;
        // 30% magnitude pruning of an over-parameterized net should
        // barely move the error.
        assert!(err_after < err_before + 0.05, "{err_before} -> {err_after}");
    }

    #[test]
    fn full_pruning_zeroes_everything() {
        let (mut mlp, _, _) = trained();
        prune_magnitude(&mut mlp, 1.0);
        assert_eq!(nonzero_weights(&mlp), 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let (mut mlp, _, _) = trained();
        let _ = prune_magnitude(&mut mlp, 1.5);
    }
}
