//! # par — the workspace's shared worker pool
//!
//! Every parallel fan-out in the repository (query labeling, per-leaf
//! model training, AQC scoring during kd-tree merging) used to be an
//! ad-hoc `std::thread::scope` with static chunking. This crate replaces
//! them with one small, dependency-free helper built on scoped threads:
//!
//! * results come back **in input order**, so callers stay deterministic
//!   regardless of how work was scheduled;
//! * scheduling is **dynamic** (workers pull the next index from a shared
//!   atomic counter), so uneven jobs — leaf models whose training sets
//!   differ by 10x — no longer serialize behind the unluckiest worker;
//! * worker panics propagate to the caller instead of being swallowed.
//!
//! ```
//! let squares = par::par_map(&[1, 2, 3, 4], 2, |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! Downstream users: `query`'s batch labeling, `spatial`'s merge-time
//! AQC scoring, `neurosketch`'s per-leaf training, the batched serving
//! engine (`neurosketch::serve`), which keeps one GEMM workspace per
//! worker via [`par_map_init`], and the sharded scale-out layer
//! (`neurosketch::shard`), which fans per-shard builds and
//! scatter/gather serving out one task per data shard.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` on up to `threads` workers, returning results in
/// input order. `f` receives `(index, &item)`.
///
/// With `threads <= 1`, few items, or a zero-length input this degrades
/// to a plain sequential map with no thread spawned at all, so it is safe
/// to call unconditionally from code whose workloads are sometimes tiny.
///
/// # Panics
/// Re-raises the panic of any worker.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_init(items, threads, || (), |(), i, x| f(i, x))
}

/// Like [`par_map`], but each worker first builds private scratch state
/// with `init` and threads it through every call. This is how hot loops
/// reuse allocation-heavy workspaces (e.g. one `nn` batch workspace per
/// worker) without any synchronization.
///
/// # Panics
/// Re-raises the panic of any worker.
pub fn par_map_init<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| f(&mut state, i, x))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index scheduled exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, 8, |i, x| {
            assert_eq!(i, *x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<f64> = (0..100).map(|i| i as f64 / 7.0).collect();
        let seq = par_map(&items, 1, |_, x| x.sin());
        let par = par_map(&items, 5, |_, x| x.sin());
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn init_state_is_per_worker_and_reused() {
        // Each worker counts how many items it processed through its
        // private state; the counts must sum to the item count.
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_init(
            &items,
            4,
            || 0usize,
            |seen, _, x| {
                *seen += 1;
                total.fetch_add(1, Ordering::Relaxed);
                *x
            },
        );
        assert_eq!(out, items);
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    #[should_panic(expected = "par worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        let _ = par_map(&items, 4, |_, x| {
            if *x == 9 {
                panic!("boom");
            }
            *x
        });
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(&[1, 2, 3], 64, |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
