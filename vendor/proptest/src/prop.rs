//! The `prop::` namespace re-exported by the prelude, mirroring
//! `proptest::prelude::prop`.

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element`, with length drawn
    /// from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}
