//! Criterion benchmark behind Fig. 6(b): per-query latency of every
//! engine on the same workload. The paper's headline — NeuroSketch
//! answers in microseconds, orders of magnitude below the model-of-data
//! baselines — shows up directly in these numbers.

use baselines::dbest::{DbEst, DbEstConfig};
use baselines::deepdb::{Spn, SpnConfig};
use baselines::tree_agg::TreeAgg;
use baselines::verdict::StratifiedSampler;
use baselines::AqpEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::simple::uniform;
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::hint::black_box;

fn bench_query_time(c: &mut Criterion) {
    // Fixed scenario: 20k rows, 3 attrs, AVG over one active attribute.
    let data = uniform(20_000, 3, 7);
    let measure = 2;
    let engine = QueryEngine::new(&data, measure);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 3,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 1_200,
        seed: 1,
    })
    .expect("workload");
    let (train, test) = wl.split(200);
    let labels = engine.label_batch(&wl.predicate, Aggregate::Avg, &train, 4);

    let mut ns_cfg = NeuroSketchConfig::default();
    ns_cfg.train.epochs = 60;
    let (sketch, _) = NeuroSketch::build_from_labeled(&train, &labels, &ns_cfg).expect("build");
    let tree_agg = TreeAgg::build(&data, measure, 2_000, 0);
    let verdict = StratifiedSampler::build(&data, measure, 2_000, 32, 0);
    let spn = Spn::build(&data, measure, &SpnConfig::default());
    let dbest = DbEst::build(
        &data,
        0,
        measure,
        &DbEstConfig {
            reg_samples: 1_000,
            ..DbEstConfig::default()
        },
    );

    let mut group = c.benchmark_group("fig6b_query_time");
    let n_test = test.len();
    let mut i = 0usize;
    let mut next = move || {
        i = (i + 1) % n_test;
        i
    };
    let test_ref = &test;

    let mut ws = nn::mlp::Workspace::default();
    group.bench_function("neurosketch", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(sketch.answer_with(&mut ws, q))
        })
    });
    group.bench_function("tree_agg", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(tree_agg.answer(&wl.predicate, Aggregate::Avg, q).unwrap())
        })
    });
    group.bench_function("verdictdb", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(verdict.answer(&wl.predicate, Aggregate::Avg, q).unwrap())
        })
    });
    group.bench_function("deepdb_spn", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(spn.answer(&wl.predicate, Aggregate::Avg, q).unwrap())
        })
    });
    group.bench_function("dbest", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(dbest.answer(&wl.predicate, Aggregate::Avg, q).unwrap())
        })
    });
    group.bench_function("exact_scan", |b| {
        b.iter(|| {
            let q = &test_ref[next()];
            black_box(engine.answer(&wl.predicate, Aggregate::Avg, q))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_query_time
}
criterion_main!(benches);
