//! The query-space kd-tree of NeuroSketch.
//!
//! Alg. 2 of the paper builds a kd-tree of fixed height `h` over the
//! training query set, splitting each node at the *median* of its queries
//! along a cyclically chosen dimension — so every leaf is (approximately)
//! equally probable under the workload distribution, diverting model
//! capacity toward frequent queries. Alg. 3 then merges sibling leaves
//! whose query function is estimated easy (small AQC) until `s` leaves
//! remain.
//!
//! The merge step is generic over the complexity score: the tree calls a
//! caller-provided `score(&[query indices]) -> f64`; NeuroSketch passes
//! its AQC estimator.

use serde::{Deserialize, Serialize};

/// Arena-allocated kd-tree over query vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdTree {
    nodes: Vec<Node>,
    root: usize,
    dims: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    parent: Option<usize>,
    kind: NodeKind,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum NodeKind {
    Internal {
        dim: usize,
        val: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        queries: Vec<usize>,
    },
}

impl KdTree {
    /// Build a kd-tree of height `height` over `queries` (Alg. 2).
    /// With height 0 the tree is a single leaf holding every query.
    ///
    /// # Panics
    /// Panics if `queries` is empty or the vectors are ragged.
    pub fn build(queries: &[Vec<f64>], height: usize) -> KdTree {
        assert!(!queries.is_empty(), "cannot partition an empty query set");
        let dims = queries[0].len();
        assert!(
            queries.iter().all(|q| q.len() == dims),
            "ragged query vectors"
        );
        let mut tree = KdTree {
            nodes: Vec::new(),
            root: 0,
            dims,
        };
        let all: Vec<usize> = (0..queries.len()).collect();
        tree.root = tree.split_node(queries, all, height, 0, None);
        tree
    }

    /// Recursive splitting per Alg. 2: median along `dim`, children split
    /// on `(dim + 1) mod d`.
    fn split_node(
        &mut self,
        queries: &[Vec<f64>],
        subset: Vec<usize>,
        height: usize,
        dim: usize,
        parent: Option<usize>,
    ) -> usize {
        // Stop at the requested height, or when a further split could not
        // separate queries (degenerate duplicates).
        if height == 0 || subset.len() < 2 {
            let id = self.nodes.len();
            self.nodes.push(Node {
                parent,
                kind: NodeKind::Leaf { queries: subset },
            });
            return id;
        }
        // Median of the subset along `dim` (paper: N.val <- median of
        // N.Q). A dimension where all queries coincide (e.g. the constant
        // width of a fixed-width workload) cannot separate anything, so
        // fall through to the next dimensions before giving up — a small
        // robustness refinement over the paper's strict cycling.
        let mut chosen: Option<(usize, f64, Vec<usize>, Vec<usize>)> = None;
        for offset in 0..self.dims {
            let d = (dim + offset) % self.dims;
            let mut vals: Vec<f64> = subset.iter().map(|&i| queries[i][d]).collect();
            let mid = (vals.len() - 1) / 2;
            let (_, median, _) =
                vals.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("no NaN"));
            let median = *median;
            let (left_q, right_q): (Vec<usize>, Vec<usize>) =
                subset.iter().partition(|&&i| queries[i][d] <= median);
            if !left_q.is_empty() && !right_q.is_empty() {
                chosen = Some((d, median, left_q, right_q));
                break;
            }
        }
        let Some((dim, median, left_q, right_q)) = chosen else {
            // Identical queries along every dimension.
            let id = self.nodes.len();
            self.nodes.push(Node {
                parent,
                kind: NodeKind::Leaf { queries: subset },
            });
            return id;
        };

        let id = self.nodes.len();
        // Placeholder; children are patched in below.
        self.nodes.push(Node {
            parent,
            kind: NodeKind::Internal {
                dim,
                val: median,
                left: usize::MAX,
                right: usize::MAX,
            },
        });
        let next_dim = (dim + 1) % self.dims;
        let left = self.split_node(queries, left_q, height - 1, next_dim, Some(id));
        let right = self.split_node(queries, right_q, height - 1, next_dim, Some(id));
        if let NodeKind::Internal {
            left: l, right: r, ..
        } = &mut self.nodes[id].kind
        {
            *l = left;
            *r = right;
        }
        id
    }

    /// Query dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Locate the leaf a query falls into (Alg. 5's descent). Returns the
    /// node id, stable across merges.
    pub fn locate(&self, q: &[f64]) -> usize {
        assert_eq!(q.len(), self.dims, "query dim mismatch");
        let mut cur = self.root;
        loop {
            match &self.nodes[cur].kind {
                NodeKind::Internal {
                    dim,
                    val,
                    left,
                    right,
                } => {
                    cur = if q[*dim] <= *val { *left } else { *right };
                }
                NodeKind::Leaf { .. } => return cur,
            }
        }
    }

    /// Ids of all leaves, in depth-first order.
    pub fn leaf_ids(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(self.root, &mut out);
        out
    }

    fn collect_leaves(&self, node: usize, out: &mut Vec<usize>) {
        match &self.nodes[node].kind {
            NodeKind::Internal { left, right, .. } => {
                self.collect_leaves(*left, out);
                self.collect_leaves(*right, out);
            }
            NodeKind::Leaf { .. } => out.push(node),
        }
    }

    /// The training-query indices owned by a leaf.
    ///
    /// # Panics
    /// Panics if `leaf` is not a leaf node id.
    pub fn leaf_queries(&self, leaf: usize) -> &[usize] {
        match &self.nodes[leaf].kind {
            NodeKind::Leaf { queries } => queries,
            NodeKind::Internal { .. } => panic!("node {leaf} is not a leaf"),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_ids().len()
    }

    /// Merge sibling leaves until `target_leaves` remain (Alg. 3).
    ///
    /// Repeatedly: score every unmarked leaf with `score` (lower = easier
    /// to approximate), mark the lowest-scoring one, and whenever two
    /// sibling leaves are both marked replace their parent with a merged
    /// (unmarked) leaf. Matches the paper's loop with the natural reading
    /// that marking skips already-marked leaves.
    ///
    /// Scores are memoized per node and fresh leaves are scored in
    /// parallel on up to `threads` workers, so an expensive scorer (AQC
    /// over sampled query pairs) is paid once per node instead of once
    /// per pass.
    pub fn merge_leaves(
        &mut self,
        score: impl Fn(&[usize]) -> f64 + Sync,
        target_leaves: usize,
        threads: usize,
    ) {
        let target = target_leaves.max(1);
        // Merging never allocates nodes (a parent is converted to a leaf
        // in place), so per-node state sized once here stays valid.
        let mut marked: Vec<bool> = vec![false; self.nodes.len()];
        // Each node is scored at most once (a leaf's query set never
        // changes while it remains a leaf; a merge turns the parent into
        // a *new* leaf that gets scored on the next pass), and every
        // pass's unscored leaves are scored together on the shared worker
        // pool — the expensive part of AQC-guided merging scales with the
        // build's thread budget.
        let mut scores: Vec<Option<f64>> = vec![None; self.nodes.len()];
        // Bound iterations: each pass either marks one leaf or merges one
        // pair, and both can happen at most `nodes` times.
        let max_iters = 4 * self.nodes.len() + 16;
        for _ in 0..max_iters {
            let leaves = self.leaf_ids();
            if leaves.len() <= target {
                return;
            }
            let unscored: Vec<usize> = leaves
                .iter()
                .copied()
                .filter(|&l| !marked[l] && scores[l].is_none())
                .collect();
            if !unscored.is_empty() {
                let this = &*self;
                let fresh = par::par_map(&unscored, threads, |_, &l| score(this.leaf_queries(l)));
                for (&l, s) in unscored.iter().zip(fresh) {
                    scores[l] = Some(s);
                }
            }
            // Mark the unmarked leaf with the smallest complexity.
            let candidate = leaves
                .iter()
                .filter(|&&l| !marked[l])
                .map(|&l| (l, scores[l].expect("scored above")))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
            if let Some((leaf, _)) = candidate {
                marked[leaf] = true;
            }
            // Merge any sibling pair that is fully marked.
            let mut merged_any = false;
            for &l in &self.leaf_ids() {
                if !marked[l] {
                    continue;
                }
                let Some(parent) = self.nodes[l].parent else {
                    continue;
                };
                let NodeKind::Internal { left, right, .. } = self.nodes[parent].kind else {
                    continue;
                };
                let sibling = if left == l { right } else { left };
                if !marked[sibling] || !self.is_leaf(sibling) || !self.is_leaf(l) {
                    continue;
                }
                // Merge: the parent becomes a leaf owning both query sets.
                let mut qs = self.leaf_queries(left).to_vec();
                qs.extend_from_slice(self.leaf_queries(right));
                self.nodes[parent].kind = NodeKind::Leaf { queries: qs };
                marked[parent] = false;
                scores[parent] = None;
                merged_any = true;
                if self.leaf_count() <= target {
                    return;
                }
                break; // leaf list changed; rescan
            }
            if candidate.is_none() && !merged_any {
                // Everything marked and no mergeable siblings — cannot
                // reach the target; stop rather than loop.
                return;
            }
        }
    }

    fn is_leaf(&self, id: usize) -> bool {
        matches!(self.nodes[id].kind, NodeKind::Leaf { .. })
    }

    /// Render the *reachable* tree as a flat node table in depth-first
    /// preorder (root first, each internal node immediately followed by
    /// its left subtree, then its right subtree).
    ///
    /// This is the serialization-friendly form consumed by persistent
    /// sketch formats: orphaned arena slots left behind by
    /// [`KdTree::merge_leaves`] are dropped, node ids are renumbered
    /// densely, and training-query ownership lists are **not** included —
    /// a flattened tree describes the routing structure only.
    pub fn to_flat(&self) -> Vec<FlatNode> {
        fn walk(tree: &KdTree, node: usize, out: &mut Vec<FlatNode>) {
            match &tree.nodes[node].kind {
                NodeKind::Internal {
                    dim,
                    val,
                    left,
                    right,
                } => {
                    let slot = out.len();
                    out.push(FlatNode::Internal {
                        dim: *dim,
                        val: *val,
                        left: 0,
                        right: 0,
                    });
                    let l = out.len();
                    walk(tree, *left, out);
                    let r = out.len();
                    walk(tree, *right, out);
                    if let FlatNode::Internal { left, right, .. } = &mut out[slot] {
                        *left = l;
                        *right = r;
                    }
                }
                NodeKind::Leaf { .. } => out.push(FlatNode::Leaf),
            }
        }
        let mut out = Vec::new();
        walk(self, self.root, &mut out);
        out
    }

    /// Rebuild a tree from a flat table produced by [`KdTree::to_flat`].
    ///
    /// Validates the table structurally — child indices in range and
    /// strictly increasing (preorder), every slot reachable exactly once,
    /// split dimensions below `dims` — so corrupt input yields a typed
    /// error, never a panic or an inconsistent tree. The rebuilt leaves
    /// own no training queries (see [`KdTree::to_flat`]); [`KdTree::locate`]
    /// and [`KdTree::leaf_ids`] behave identically to the source tree.
    pub fn from_flat(nodes: &[FlatNode], dims: usize) -> Result<KdTree, FlatTreeError> {
        if nodes.is_empty() {
            return Err(FlatTreeError::Empty);
        }
        if dims == 0 {
            return Err(FlatTreeError::ZeroDims);
        }
        let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
        let mut reached = vec![false; nodes.len()];
        // Preorder invariant (children strictly after their parent) makes
        // an explicit stack walk cycle-free by construction.
        let mut stack = vec![0usize];
        reached[0] = true;
        while let Some(i) = stack.pop() {
            if let FlatNode::Internal {
                dim, left, right, ..
            } = nodes[i]
            {
                if dim >= dims {
                    return Err(FlatTreeError::BadSplitDim { node: i, dim });
                }
                for child in [left, right] {
                    if child <= i || child >= nodes.len() {
                        return Err(FlatTreeError::BadChild { node: i, child });
                    }
                    if reached[child] {
                        return Err(FlatTreeError::SharedChild { child });
                    }
                    reached[child] = true;
                    parent[child] = Some(i);
                    stack.push(child);
                }
            }
        }
        if let Some(orphan) = reached.iter().position(|r| !r) {
            return Err(FlatTreeError::Unreachable { node: orphan });
        }
        let rebuilt = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| Node {
                parent: parent[i],
                kind: match *n {
                    FlatNode::Internal {
                        dim,
                        val,
                        left,
                        right,
                    } => NodeKind::Internal {
                        dim,
                        val,
                        left,
                        right,
                    },
                    FlatNode::Leaf => NodeKind::Leaf {
                        queries: Vec::new(),
                    },
                },
            })
            .collect();
        Ok(KdTree {
            nodes: rebuilt,
            root: 0,
            dims,
        })
    }
}

/// One node of a flattened kd-tree (see [`KdTree::to_flat`]): either an
/// internal split or a leaf, with children addressed by table index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlatNode {
    /// An internal split node.
    Internal {
        /// Attribute the node splits on.
        dim: usize,
        /// Split value (queries with `q[dim] <= val` go left).
        val: f64,
        /// Table index of the left child.
        left: usize,
        /// Table index of the right child.
        right: usize,
    },
    /// A leaf (partition). Query ownership lists are not part of the
    /// flat form.
    Leaf,
}

/// Structural defects [`KdTree::from_flat`] detects in a flat node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatTreeError {
    /// The node table was empty.
    Empty,
    /// The tree claimed zero query dimensions.
    ZeroDims,
    /// A split dimension was out of range for the declared dimensionality.
    BadSplitDim {
        /// Offending node index.
        node: usize,
        /// The out-of-range split dimension.
        dim: usize,
    },
    /// A child index pointed out of range or not strictly forward
    /// (preorder requires children after their parent).
    BadChild {
        /// Offending node index.
        node: usize,
        /// The invalid child index.
        child: usize,
    },
    /// Two internal nodes claimed the same child.
    SharedChild {
        /// The doubly-claimed child index.
        child: usize,
    },
    /// A table slot was not reachable from the root.
    Unreachable {
        /// The unreachable node index.
        node: usize,
    },
}

impl std::fmt::Display for FlatTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlatTreeError::Empty => write!(f, "empty node table"),
            FlatTreeError::ZeroDims => write!(f, "zero query dimensions"),
            FlatTreeError::BadSplitDim { node, dim } => {
                write!(f, "node {node} splits on out-of-range dimension {dim}")
            }
            FlatTreeError::BadChild { node, child } => {
                write!(f, "node {node} has invalid child index {child}")
            }
            FlatTreeError::SharedChild { child } => {
                write!(f, "node {child} is claimed by two parents")
            }
            FlatTreeError::Unreachable { node } => {
                write!(f, "node {node} is unreachable from the root")
            }
        }
    }
}

impl std::error::Error for FlatTreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random query set in [0,1]^2.
    fn queries(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = ((i as f64 * 0.754_877_666) % 1.0 + 1.0) % 1.0;
                let b = ((i as f64 * 0.569_840_290) % 1.0 + 1.0) % 1.0;
                vec![a, b]
            })
            .collect()
    }

    #[test]
    fn height_h_gives_2h_leaves() {
        let qs = queries(256);
        for h in 0..=4 {
            let t = KdTree::build(&qs, h);
            assert_eq!(t.leaf_count(), 1 << h, "height {h}");
        }
    }

    #[test]
    fn leaves_partition_the_query_set() {
        let qs = queries(100);
        let t = KdTree::build(&qs, 3);
        let mut seen = vec![false; qs.len()];
        for l in t.leaf_ids() {
            for &qi in t.leaf_queries(l) {
                assert!(!seen[qi], "query {qi} in two leaves");
                seen[qi] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some query not in any leaf");
    }

    #[test]
    fn locate_agrees_with_ownership() {
        // Every training query must locate to the leaf that owns it.
        let qs = queries(128);
        let t = KdTree::build(&qs, 4);
        for (i, q) in qs.iter().enumerate() {
            let leaf = t.locate(q);
            assert!(
                t.leaf_queries(leaf).contains(&i),
                "query {i} located to leaf {leaf} that does not own it"
            );
        }
    }

    #[test]
    fn median_split_balances_leaves() {
        let qs = queries(256);
        let t = KdTree::build(&qs, 3);
        for l in t.leaf_ids() {
            let n = t.leaf_queries(l).len();
            assert!((24..=40).contains(&n), "leaf size {n} far from 32");
        }
    }

    #[test]
    fn merging_reaches_target() {
        let qs = queries(256);
        let mut t = KdTree::build(&qs, 4);
        assert_eq!(t.leaf_count(), 16);
        // Score: constant — merging order arbitrary but count must drop.
        t.merge_leaves(|_| 1.0, 8, 2);
        assert_eq!(t.leaf_count(), 8);
    }

    #[test]
    fn merging_prefers_low_scores() {
        // Diagonal queries: every median split keeps query ids
        // contiguous, so a height-2 tree has 4 leaves holding ids
        // [0,16), [16,32), [32,48), [48,64) — and the two low-id
        // leaves are siblings.
        let qs: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![i as f64 / 64.0, i as f64 / 64.0])
            .collect();
        let mut t = KdTree::build(&qs, 2);
        assert_eq!(t.leaf_count(), 4);
        // Score each leaf by its mean query id: the two low-id sibling
        // leaves are cheapest and must be the ones merged.
        t.merge_leaves(
            |qids| qids.iter().sum::<usize>() as f64 / qids.len() as f64,
            3,
            2,
        );
        assert_eq!(t.leaf_count(), 3);
        let merged = t.leaf_queries(t.locate(&qs[0]));
        assert_eq!(merged.len(), 32, "low-score siblings should have merged");
        assert!(merged.contains(&0) && merged.contains(&31));
    }

    #[test]
    fn locate_still_works_after_merge() {
        let qs = queries(200);
        let mut t = KdTree::build(&qs, 4);
        t.merge_leaves(|qids| qids.len() as f64, 5, 1);
        assert_eq!(t.leaf_count(), 5);
        for (i, q) in qs.iter().enumerate() {
            let leaf = t.locate(q);
            assert!(
                t.leaf_queries(leaf).contains(&i),
                "query {i} lost after merge"
            );
        }
    }

    #[test]
    fn merge_to_one_leaf() {
        let qs = queries(64);
        let mut t = KdTree::build(&qs, 3);
        t.merge_leaves(|_| 0.0, 1, 1);
        assert_eq!(t.leaf_count(), 1);
        let l = t.leaf_ids()[0];
        assert_eq!(t.leaf_queries(l).len(), 64);
    }

    #[test]
    fn height_zero_single_leaf() {
        let qs = queries(10);
        let t = KdTree::build(&qs, 0);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.locate(&[0.5, 0.5]), t.leaf_ids()[0]);
    }

    #[test]
    fn duplicate_queries_stop_splitting_gracefully() {
        let qs = vec![vec![0.5, 0.5]; 16];
        let t = KdTree::build(&qs, 4);
        assert_eq!(t.leaf_count(), 1, "identical queries cannot be split");
    }

    #[test]
    #[should_panic(expected = "empty query set")]
    fn empty_build_panics() {
        let _ = KdTree::build(&[], 2);
    }

    #[test]
    fn flat_roundtrip_preserves_routing() {
        let qs = queries(200);
        let mut t = KdTree::build(&qs, 4);
        t.merge_leaves(|qids| qids.len() as f64, 5, 1);
        let flat = t.to_flat();
        // Reachable full binary tree: leaves + internals = 2 * leaves - 1.
        assert_eq!(flat.len(), 2 * t.leaf_count() - 1);
        let back = KdTree::from_flat(&flat, t.dims()).unwrap();
        assert_eq!(back.leaf_count(), t.leaf_count());
        // Same routing: probe a grid and compare leaf *positions* (ids are
        // renumbered, positions in leaf order are stable).
        let orig_leaves = t.leaf_ids();
        let back_leaves = back.leaf_ids();
        for i in 0..20 {
            for j in 0..20 {
                let q = [i as f64 / 20.0, j as f64 / 20.0];
                let a = orig_leaves.iter().position(|&l| l == t.locate(&q));
                let b = back_leaves.iter().position(|&l| l == back.locate(&q));
                assert_eq!(a, b, "query {q:?} routed differently");
            }
        }
    }

    #[test]
    fn flat_drops_orphaned_arena_slots() {
        let qs = queries(128);
        let mut t = KdTree::build(&qs, 3);
        t.merge_leaves(|_| 1.0, 2, 1);
        // The arena still holds every pre-merge node; the flat form only
        // the reachable ones.
        assert_eq!(t.to_flat().len(), 2 * t.leaf_count() - 1);
    }

    #[test]
    fn from_flat_rejects_structural_corruption() {
        assert!(matches!(
            KdTree::from_flat(&[], 2),
            Err(FlatTreeError::Empty)
        ));
        assert!(matches!(
            KdTree::from_flat(&[FlatNode::Leaf], 0),
            Err(FlatTreeError::ZeroDims)
        ));
        // Child pointing backwards (cycle attempt).
        let cyc = [
            FlatNode::Internal {
                dim: 0,
                val: 0.5,
                left: 0,
                right: 2,
            },
            FlatNode::Leaf,
            FlatNode::Leaf,
        ];
        assert!(matches!(
            KdTree::from_flat(&cyc, 2),
            Err(FlatTreeError::BadChild { .. })
        ));
        // Child out of range.
        let oob = [FlatNode::Internal {
            dim: 0,
            val: 0.5,
            left: 1,
            right: 9,
        }];
        assert!(matches!(
            KdTree::from_flat(&oob, 2),
            Err(FlatTreeError::BadChild { .. })
        ));
        // Split dimension out of range.
        let bad_dim = [
            FlatNode::Internal {
                dim: 5,
                val: 0.5,
                left: 1,
                right: 2,
            },
            FlatNode::Leaf,
            FlatNode::Leaf,
        ];
        assert!(matches!(
            KdTree::from_flat(&bad_dim, 2),
            Err(FlatTreeError::BadSplitDim { .. })
        ));
        // Unreachable trailing slot.
        let orphan = [FlatNode::Leaf, FlatNode::Leaf];
        assert!(matches!(
            KdTree::from_flat(&orphan, 2),
            Err(FlatTreeError::Unreachable { .. })
        ));
        // Two parents claiming one child.
        let shared = [
            FlatNode::Internal {
                dim: 0,
                val: 0.5,
                left: 1,
                right: 2,
            },
            FlatNode::Internal {
                dim: 1,
                val: 0.5,
                left: 2,
                right: 3,
            },
            FlatNode::Leaf,
            FlatNode::Leaf,
        ];
        assert!(matches!(
            KdTree::from_flat(&shared, 2),
            Err(FlatTreeError::SharedChild { .. })
        ));
    }

    #[test]
    fn single_leaf_flat_roundtrip() {
        let t = KdTree::build(&queries(10), 0);
        let flat = t.to_flat();
        assert_eq!(flat, vec![FlatNode::Leaf]);
        let back = KdTree::from_flat(&flat, 2).unwrap();
        assert_eq!(back.leaf_count(), 1);
    }
}
