//! Throughput-oriented query serving.
//!
//! The paper's query-time story is a single forward pass; a production
//! deployment answers *streams* of queries. [`SketchServer`] turns a
//! loaded sketch (usually from an NSK2 artifact, [`crate::persist`])
//! into a batch-serving engine:
//!
//! * each incoming batch is sharded across the `par` worker pool, one
//!   reusable [`BatchScratch`]/exact-engine scratch per worker, so
//!   steady-state serving performs no per-query allocation and
//!   throughput scales with threads;
//! * within a shard, sketch-routed queries are grouped by kd-tree leaf
//!   and answered with [`Mlp::forward_batch`](nn::Mlp::forward_batch) —
//!   one GEMM per (partition, layer) instead of one matvec per query,
//!   so batching pays even on a single core. With
//!   [`ServeOptions::layout`] on (the default) those GEMMs run through
//!   a pre-transposed, block-padded copy of every leaf's weights
//!   ([`crate::sketch::SketchLayout`], built once at construction), so
//!   steady-state batches skip the per-batch weight transpose entirely
//!   and take [`nn::linalg::matmul_padded`]'s dense fast path;
//! * every query first passes the wrapped [`DqdRouter`]'s DQD rules
//!   (Sec. 4.3): too-small ranges and too-complex partitions go to the
//!   configured exact engine instead of the sketch.
//!
//! Answers are **bitwise identical** to calling
//! [`NeuroSketch::answer`](crate::NeuroSketch::answer) (or the exact
//! engine) query-by-query, in input order, at any thread count — the
//! sharding and leaf-grouping change scheduling, not arithmetic.
//!
//! `SketchServer` fronts **one** sketch over the whole table; when the
//! data itself is partitioned across shards, [`crate::shard`] layers a
//! scatter/gather [`ShardedServer`](crate::shard::ShardedServer) over
//! per-shard deployments (persisted together via
//! [`crate::persist::save_sharded`]).
//!
//! ```
//! use neurosketch::serve::{ServeOptions, SketchServer};
//! use neurosketch::router::{DqdRouter, RoutingPolicy};
//! use neurosketch::{NeuroSketch, NeuroSketchConfig};
//!
//! let queries: Vec<Vec<f64>> = (0..160)
//!     .map(|i| vec![(i as f64 * 0.7548) % 1.0, (i as f64 * 0.5698) % 1.0])
//!     .collect();
//! let labels: Vec<f64> = queries.iter().map(|q| q[0] + q[1]).collect();
//! let mut cfg = NeuroSketchConfig::small();
//! cfg.train.epochs = 10;
//! let (sketch, report) = NeuroSketch::build_from_labeled(&queries, &labels, &cfg).unwrap();
//! let router = DqdRouter::new(sketch, report.leaf_aqcs, RoutingPolicy::default());
//! let server = SketchServer::new(router, ServeOptions::default());
//! let (answers, stats) = server.answer_batch(&queries);
//! assert_eq!(answers.len(), queries.len());
//! assert_eq!(stats.sketch, queries.len());
//! ```

use crate::router::{range_volume, DqdRouter, Route};
use crate::sketch::{BatchScratch, NeuroSketch, SketchLayout};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::predicate::PredicateFn;

/// Tuning knobs for a [`SketchServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads a batch fans out across.
    pub threads: usize,
    /// Upper bound on the shard (sub-batch) a single worker processes at
    /// once; bounds per-worker scratch memory on huge batches.
    pub max_shard: usize,
    /// Number of active attributes `k` whose `[c..., r...]` widths define
    /// the range volume for the router's range rule (Lemma 3.6). `None`
    /// skips the range rule (predicates without a meaningful volume).
    pub active_attrs: Option<usize>,
    /// Serve through pre-transposed, block-padded weight copies
    /// ([`crate::sketch::SketchLayout`], built once at server
    /// construction): batches skip the per-batch weight transpose and
    /// run the dense padded GEMM kernel. Answers are bitwise identical
    /// either way; turning this off only trades serving throughput for
    /// the layout's extra resident copy of the weights.
    pub layout: bool,
}

impl Default for ServeOptions {
    /// Four workers, 1024-query shards, range rule off, padded layout on.
    fn default() -> Self {
        ServeOptions {
            threads: 4,
            max_shard: 1024,
            active_attrs: None,
            layout: true,
        }
    }
}

/// Where sketch-refused queries go: the exact engine plus the predicate
/// and aggregate it should evaluate (the same triple that labeled the
/// training workload).
pub struct ExactBackend<'a> {
    /// The exact oracle over the *current* data.
    pub engine: &'a QueryEngine<'a>,
    /// Predicate the served query vectors parameterize.
    pub predicate: &'a dyn PredicateFn,
    /// Aggregate function being served.
    pub aggregate: Aggregate,
}

/// Per-batch routing tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered by the sketch's forward pass.
    pub sketch: usize,
    /// Queries sent to the exact engine by the range rule.
    pub exact_small_range: usize,
    /// Queries sent to the exact engine by the complexity rule.
    pub exact_hard_leaf: usize,
}

impl ServeStats {
    /// Total queries answered.
    pub fn total(&self) -> usize {
        self.sketch + self.exact_small_range + self.exact_hard_leaf
    }

    fn absorb(&mut self, other: ServeStats) {
        self.sketch += other.sketch;
        self.exact_small_range += other.exact_small_range;
        self.exact_hard_leaf += other.exact_hard_leaf;
    }
}

/// A loaded sketch behind a concurrent, batch-oriented serving front.
pub struct SketchServer<'a> {
    router: DqdRouter,
    fallback: Option<ExactBackend<'a>>,
    opts: ServeOptions,
    /// Built once at construction when `opts.layout` is on; workers
    /// share it read-only.
    layout: Option<SketchLayout>,
}

impl<'a> SketchServer<'a> {
    /// Serve a routed sketch with no exact backend. The router's policy
    /// is ignored (there is nowhere to fall back to): every query goes
    /// to the sketch.
    pub fn new(router: DqdRouter, opts: ServeOptions) -> SketchServer<'static> {
        let layout = opts.layout.then(|| router.sketch().serving_layout());
        SketchServer {
            router,
            fallback: None,
            opts,
            layout,
        }
    }

    /// Serve with DQD routing live: queries the policy refuses are
    /// answered by `fallback` instead of the sketch.
    pub fn with_fallback(
        router: DqdRouter,
        fallback: ExactBackend<'a>,
        opts: ServeOptions,
    ) -> SketchServer<'a> {
        let layout = opts.layout.then(|| router.sketch().serving_layout());
        SketchServer {
            router,
            fallback: Some(fallback),
            opts,
            layout,
        }
    }

    /// The served sketch.
    pub fn sketch(&self) -> &NeuroSketch {
        self.router.sketch()
    }

    /// The wrapped router.
    pub fn router(&self) -> &DqdRouter {
        &self.router
    }

    /// The active options.
    pub fn options(&self) -> ServeOptions {
        self.opts
    }

    /// Answer one query through the same routing as a batch of one.
    pub fn answer(&self, q: &[f64]) -> f64 {
        self.answer_batch(std::slice::from_ref(&q.to_vec())).0[0]
    }

    /// Answer a batch of queries. Returns the answers in input order and
    /// the routing tally.
    ///
    /// The batch is split into up to `opts.threads` shards (each at most
    /// `opts.max_shard` queries) and served on the shared worker pool;
    /// each worker routes its shard, answers the sketch-routed queries
    /// with leaf-grouped GEMMs, and the rest through the exact backend.
    pub fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, ServeStats) {
        if queries.is_empty() {
            return (Vec::new(), ServeStats::default());
        }
        let threads = self.opts.threads.max(1);
        let shard = queries
            .len()
            .div_ceil(threads)
            .clamp(1, self.opts.max_shard.max(1));
        let shards: Vec<&[Vec<f64>]> = queries.chunks(shard).collect();
        let parts = par::par_map_init(
            &shards,
            threads,
            || (BatchScratch::default(), Vec::new()),
            |(scratch, exact_scratch), _, chunk| self.serve_shard(scratch, exact_scratch, chunk),
        );
        let mut answers = Vec::with_capacity(queries.len());
        let mut stats = ServeStats::default();
        for (part, part_stats) in parts {
            answers.extend(part);
            stats.absorb(part_stats);
        }
        (answers, stats)
    }

    /// Route and answer one shard with this worker's scratch state.
    fn serve_shard(
        &self,
        scratch: &mut BatchScratch,
        exact_scratch: &mut Vec<f64>,
        chunk: &[Vec<f64>],
    ) -> (Vec<f64>, ServeStats) {
        let mut out = vec![0.0; chunk.len()];
        let mut stats = ServeStats::default();
        let mut to_sketch = Vec::with_capacity(chunk.len());
        let mut to_exact = Vec::new();
        match &self.fallback {
            // No fallback: routing is moot, everything goes to the sketch.
            None => to_sketch.extend(0..chunk.len()),
            Some(_) => {
                for (i, q) in chunk.iter().enumerate() {
                    let volume = self.opts.active_attrs.map(|k| range_volume(q, k));
                    match self.router.route(q, volume) {
                        Route::Sketch => to_sketch.push(i),
                        Route::ExactSmallRange => {
                            stats.exact_small_range += 1;
                            to_exact.push(i);
                        }
                        Route::ExactHardLeaf => {
                            stats.exact_hard_leaf += 1;
                            to_exact.push(i);
                        }
                    }
                }
            }
        }
        stats.sketch += to_sketch.len();
        match &self.layout {
            Some(l) => self
                .sketch()
                .answer_subset_with_layout(l, scratch, chunk, &to_sketch, &mut out),
            None => self
                .sketch()
                .answer_subset_with(scratch, chunk, &to_sketch, &mut out),
        }
        if let Some(fb) = &self.fallback {
            for &i in &to_exact {
                out[i] =
                    fb.engine
                        .answer_with(exact_scratch, fb.predicate, fb.aggregate, &chunk[i]);
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoutingPolicy;
    use crate::sketch::NeuroSketchConfig;
    use datagen::simple::uniform;
    use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

    fn served_setup() -> (datagen::Dataset, Workload, DqdRouter) {
        let data = uniform(2_000, 2, 0);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 500,
            seed: 5,
        })
        .unwrap();
        let engine = QueryEngine::new(&data, 1);
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 2;
        cfg.target_partitions = 4;
        cfg.train.epochs = 15;
        let (sketch, report) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
                .unwrap();
        let router = DqdRouter::new(sketch, report.leaf_aqcs, RoutingPolicy::default());
        (data, wl, router)
    }

    #[test]
    fn batch_serving_is_bitwise_identical_to_single_query_loop() {
        let (_data, wl, router) = served_setup();
        let expected: Vec<f64> = wl
            .queries
            .iter()
            .map(|q| router.sketch().answer(q))
            .collect();
        // Both serving paths — the plain per-batch-transpose one and the
        // pre-transposed padded layout — must be bitwise the scalar loop.
        for layout in [false, true] {
            for threads in [1, 2, 4] {
                let (_, _, router) = {
                    // Rebuild per thread count: SketchServer consumes the router.
                    let (d, w, r) = served_setup();
                    (d, w, r)
                };
                let server = SketchServer::new(
                    router,
                    ServeOptions {
                        threads,
                        max_shard: 64,
                        active_attrs: None,
                        layout,
                    },
                );
                let (answers, stats) = server.answer_batch(&wl.queries);
                assert_eq!(answers, expected, "threads={threads} layout={layout}");
                assert_eq!(stats.sketch, wl.queries.len());
                assert_eq!(stats.total(), wl.queries.len());
            }
        }
    }

    #[test]
    fn routing_splits_between_sketch_and_exact() {
        let (data, wl, router) = served_setup();
        let engine = QueryEngine::new(&data, 1);
        // Reconstruct with a restrictive range rule.
        let policy = RoutingPolicy {
            min_range_volume: 0.3,
            max_leaf_aqc: f64::INFINITY,
        };
        let router = DqdRouter::new(router.sketch().clone(), router.leaf_aqcs().to_vec(), policy);
        let reference = router.clone_reference_answers(&engine, &wl);
        let server = SketchServer::with_fallback(
            router,
            ExactBackend {
                engine: &engine,
                predicate: &wl.predicate,
                aggregate: Aggregate::Count,
            },
            ServeOptions {
                threads: 2,
                max_shard: 128,
                active_attrs: Some(1),
                layout: true,
            },
        );
        let (answers, stats) = server.answer_batch(&wl.queries);
        assert_eq!(answers, reference.0);
        assert_eq!(stats.exact_small_range, reference.1);
        assert!(stats.exact_small_range > 0, "range rule never fired");
        assert!(stats.sketch > 0, "sketch never answered");
        assert_eq!(stats.total(), wl.queries.len());
    }

    impl DqdRouter {
        /// Test helper: the per-query reference answers and the count of
        /// range-rule fallbacks, via the router's own scalar path.
        fn clone_reference_answers(
            &self,
            engine: &QueryEngine<'_>,
            wl: &Workload,
        ) -> (Vec<f64>, usize) {
            let mut small = 0;
            let answers = wl
                .queries
                .iter()
                .map(|q| {
                    let vol = range_volume(q, 1);
                    let (v, route) = self.answer(q, Some(vol), |q| {
                        engine.answer(&wl.predicate, Aggregate::Count, q)
                    });
                    if route == Route::ExactSmallRange {
                        small += 1;
                    }
                    v
                })
                .collect();
            (answers, small)
        }
    }

    #[test]
    fn empty_batch_and_single_query() {
        let (_data, wl, router) = served_setup();
        let expect = router.sketch().answer(&wl.queries[0]);
        let server = SketchServer::new(router, ServeOptions::default());
        let (answers, stats) = server.answer_batch(&[]);
        assert!(answers.is_empty());
        assert_eq!(stats.total(), 0);
        assert_eq!(server.answer(&wl.queries[0]), expect);
    }

    #[test]
    fn loaded_artifact_serves_identically_to_quantized_source() {
        let (_data, wl, router) = served_setup();
        let artifact = crate::persist::decode(crate::persist::encode_router(&router)).unwrap();
        let quantized = router.sketch().quantized();
        let server = SketchServer::new(artifact.into_router(), ServeOptions::default());
        let (answers, _) = server.answer_batch(&wl.queries);
        for (q, a) in wl.queries.iter().zip(&answers) {
            assert_eq!(*a, quantized.answer(q));
        }
    }
}
