//! Loss functions and evaluation metrics.

/// Mean squared error over paired predictions/targets.
///
/// This is the training objective of Alg. 4 in the paper.
pub fn mse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mse inputs must pair up");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute error.
pub fn mae(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mae inputs must pair up");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Normalized MAE as defined in Sec. 5.1 of the paper: the mean absolute
/// error divided by the mean *magnitude* of the true answers. Returns
/// `f64::INFINITY` when the mean magnitude is zero but errors are not.
pub fn normalized_mae(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        target.len(),
        "normalized_mae inputs must pair up"
    );
    if pred.is_empty() {
        return 0.0;
    }
    let err = mae(pred, target);
    let scale = target.iter().map(|t| t.abs()).sum::<f64>() / target.len() as f64;
    if scale == 0.0 {
        if err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        err / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn mae_basic() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 0.0]), 1.5);
    }

    #[test]
    fn normalized_mae_scales_by_target_magnitude() {
        // errors: 1 and 1; mean |target| = 10 -> 0.1
        assert!((normalized_mae(&[9.0, 11.0], &[10.0, 10.0]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn normalized_mae_zero_scale() {
        assert_eq!(normalized_mae(&[0.0], &[0.0]), 0.0);
        assert_eq!(normalized_mae(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
