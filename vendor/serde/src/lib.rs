//! Offline stand-in for [`serde`](https://serde.rs), specialised to the
//! one data format this workspace uses: JSON.
//!
//! Real serde separates data model from format; this stub collapses the
//! two, which keeps the vendored code small while remaining source- and
//! wire-compatible for the workspace's usage:
//!
//! - `#[derive(Serialize, Deserialize)]` on structs with named fields
//!   and on enums (unit, newtype, and struct variants), provided by the
//!   vendored `serde_derive` proc-macro.
//! - The JSON encoding matches `serde_json`'s defaults: structs as
//!   objects, unit enum variants as strings, data-carrying variants as
//!   externally tagged one-key objects, maps with stringified keys.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct P { x: f64, tags: Vec<String> }
//!
//! let p = P { x: 0.5, tags: vec!["a".into()] };
//! let s = serde::json::to_string(&p).unwrap();
//! assert_eq!(s, r#"{"x":0.5,"tags":["a"]}"#);
//! let back: P = serde::json::from_str(&s).unwrap();
//! assert_eq!(back, p);
//! ```

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod json;
pub mod ser;

use std::collections::BTreeMap;

/// JSON serialization. Implementors append their encoding to `out`.
pub trait Serialize {
    /// Append `self` as JSON.
    fn json_serialize(&self, out: &mut String);
}

/// JSON deserialization from a [`de::Deserializer`].
pub trait Deserialize: Sized {
    /// Parse one JSON value.
    fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_serialize(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
                let v = de.parse_i128()?;
                <$t>::try_from(v).map_err(|_| de.error("integer out of range"))
            }
        }
    )*};
}

int_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_serialize(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // serde_json emits null for non-finite floats.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
                if de.eat_keyword("null") {
                    return Ok(<$t>::NAN);
                }
                de.parse_f64().map(|v| v as $t)
            }
        }
    )*};
}

float_impls!(f64, f32);

impl Serialize for bool {
    fn json_serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        if de.eat_keyword("true") {
            Ok(true)
        } else if de.eat_keyword("false") {
            Ok(false)
        } else {
            Err(de.error("expected boolean"))
        }
    }
}

impl Serialize for String {
    fn json_serialize(&self, out: &mut String) {
        ser::write_string(out, self);
    }
}

impl Serialize for str {
    fn json_serialize(&self, out: &mut String) {
        ser::write_string(out, self);
    }
}

impl Deserialize for String {
    fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        de.parse_string()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_serialize(&self, out: &mut String) {
        self.as_slice().json_serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_serialize(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json_serialize(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        de.expect_char('[')?;
        let mut out = Vec::new();
        if de.eat_char(']') {
            return Ok(out);
        }
        loop {
            out.push(T::json_deserialize(de)?);
            if de.eat_char(',') {
                continue;
            }
            de.expect_char(']')?;
            return Ok(out);
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_serialize(&self, out: &mut String) {
        match self {
            Some(v) => v.json_serialize(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        if de.eat_keyword("null") {
            Ok(None)
        } else {
            T::json_deserialize(de).map(Some)
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_serialize(&self, out: &mut String) {
        (**self).json_serialize(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        T::json_deserialize(de).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_serialize(&self, out: &mut String) {
        (**self).json_serialize(out);
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json_serialize(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.json_serialize(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
                de.expect_char('[')?;
                let mut first = true;
                let value = ($(
                    {
                        if !first { de.expect_char(',')?; }
                        first = false;
                        $t::json_deserialize(de)?
                    },
                )+);
                let _ = first;
                de.expect_char(']')?;
                Ok(value)
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types usable as JSON object keys (JSON keys are always strings, so
/// integer keys are stringified, matching serde_json).
pub trait MapKey: Sized {
    /// Render as the raw (unquoted) key text.
    fn to_json_key(&self) -> String;
    /// Parse back from the raw key text.
    fn from_json_key(s: &str) -> Option<Self>;
}

macro_rules! mapkey_ints {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_json_key(&self) -> String { self.to_string() }
            fn from_json_key(s: &str) -> Option<Self> { s.parse().ok() }
        }
    )*};
}

mapkey_ints!(usize, u64, u32, i64, i32);

impl MapKey for String {
    fn to_json_key(&self) -> String {
        self.clone()
    }
    fn from_json_key(s: &str) -> Option<Self> {
        Some(s.to_string())
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn json_serialize(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser::write_string(out, &k.to_json_key());
            out.push(':');
            v.json_serialize(out);
        }
        out.push('}');
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn json_deserialize(de: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        de.expect_char('{')?;
        let mut out = BTreeMap::new();
        if de.eat_char('}') {
            return Ok(out);
        }
        loop {
            let key = de.parse_string()?;
            let key = K::from_json_key(&key).ok_or_else(|| de.error("bad map key"))?;
            de.expect_char(':')?;
            out.insert(key, V::json_deserialize(de)?);
            if de.eat_char(',') {
                continue;
            }
            de.expect_char('}')?;
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0.0f64, 1.5, -2.25, 1e-9, 12_345.678_901_234] {
            let mut s = String::new();
            v.json_serialize(&mut s);
            let back: f64 = json::from_str(&s).unwrap();
            assert_eq!(back, v, "via {s}");
        }
        let mut s = String::new();
        f64::NAN.json_serialize(&mut s);
        assert_eq!(s, "null");
        let back: f64 = json::from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(f64, f64)> = vec![(0.0, 1.0), (-3.5, 7.25)];
        let s = json::to_string(&v).unwrap();
        assert_eq!(s, "[[0,1],[-3.5,7.25]]");
        let back: Vec<(f64, f64)> = json::from_str(&s).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert(3usize, vec![1u32, 2]);
        let s = json::to_string(&m).unwrap();
        assert_eq!(s, r#"{"3":[1,2]}"#);
        let back: BTreeMap<usize, Vec<u32>> = json::from_str(&s).unwrap();
        assert_eq!(back, m);

        let o: Option<usize> = None;
        assert_eq!(json::to_string(&o).unwrap(), "null");
        let back: Option<usize> = json::from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\t\u{1}".to_string();
        let enc = json::to_string(&s).unwrap();
        let back: String = json::from_str(&enc).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(json::from_str::<f64>("not json").is_err());
        assert!(json::from_str::<Vec<f64>>("[1,2").is_err());
        assert!(json::from_str::<f64>("1 trailing").is_err());
    }
}
