//! Property tests for the batched training hot path: the GEMM kernels
//! must match naive triple loops on random matrices, and the batched
//! forward/backward passes must match the per-example path to 1e-9 on
//! random shapes. (The implementation promises bitwise equality; the
//! properties assert the contract the rest of the system relies on.)

use nn::linalg::{matmul, matmul_a_bt, matmul_at_b, Matrix};
use nn::mlp::{accumulate_example_gradient, BatchWorkspace, Gradients, Workspace};
use nn::train::{train, train_per_example, TrainConfig};
use nn::Mlp;
use proptest::prelude::*;

/// Strategy: a pool of `(gate, value)` cells that [`mk`] slices matrices
/// out of. The gate zeroes ~30% of entries so the kernels' skip paths
/// are exercised.
fn cells(len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..1.0, -2.0f64..2.0), len)
}

/// Cut a `rows x cols` matrix from the cell pool, starting at `offset`
/// (wrapping), zeroing gated entries.
fn mk(rows: usize, cols: usize, pool: &[(f64, f64)], offset: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|i| {
            let (gate, v) = pool[(offset + i) % pool.len()];
            if gate < 0.3 {
                0.0
            } else {
                v
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

fn transpose(m: &Matrix) -> Matrix {
    let mut t = Matrix::zeros(m.cols(), m.rows());
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            t.set(c, r, m.get(r, c));
        }
    }
    t
}

fn assert_close(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        assert!(
            (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
            "{what}: {g} vs {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `matmul` matches the naive triple loop on random shapes/content.
    #[test]
    fn matmul_matches_naive(
        m in 1usize..10,
        k in 1usize..12,
        n in 1usize..10,
        pool in cells(256),
    ) {
        let a = mk(m, k, &pool, 0);
        let b = mk(k, n, &pool, 97);
        let mut c = Matrix::zeros(m, n);
        matmul(&mut c, &a, &b);
        assert_close(&c, &naive_matmul(&a, &b), "matmul");
    }

    /// `matmul_at_b` equals naive `Aᵀ·B`, `matmul_a_bt` equals naive `A·Bᵀ`.
    #[test]
    fn transpose_kernels_match_naive(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        pool in cells(256),
    ) {
        let a = mk(m, k, &pool, 11);
        let b = mk(m, n, &pool, 59);
        let mut c = Matrix::zeros(k, n);
        matmul_at_b(&mut c, &a, &b);
        assert_close(&c, &naive_matmul(&transpose(&a), &b), "matmul_at_b");

        let b2 = mk(n, k, &pool, 131);
        let mut c2 = Matrix::zeros(m, n);
        matmul_a_bt(&mut c2, &a, &b2);
        assert_close(&c2, &naive_matmul(&a, &transpose(&b2)), "matmul_a_bt");
    }

    /// Batched forward matches the per-example forward to 1e-9 on random
    /// architectures and inputs.
    #[test]
    fn forward_batch_matches_per_example(
        bsz in 1usize..17,
        d in 1usize..5,
        h1 in 1usize..12,
        h2 in 1usize..8,
        seed in 0u64..1000,
        pool in cells(128),
    ) {
        let mlp = Mlp::new(&[d, h1, h2, 1], seed);
        let x = mk(bsz, d, &pool, 0);
        let mut bws = BatchWorkspace::default();
        let out = mlp.forward_batch(&mut bws, &x).clone();
        let mut ws = Workspace::default();
        for e in 0..bsz {
            let want = mlp.forward_with(&mut ws, x.row(e));
            prop_assert!(
                (out.get(e, 0) - want[0]).abs() <= 1e-9 * (1.0 + want[0].abs()),
                "row {}: {} vs {}",
                e,
                out.get(e, 0),
                want[0]
            );
        }
    }

    /// Batched backward matches per-example gradient accumulation to 1e-9.
    #[test]
    fn backward_batch_matches_per_example(
        bsz in 1usize..17,
        d in 1usize..5,
        h in 1usize..12,
        seed in 0u64..1000,
        pool in cells(128),
    ) {
        let mlp = Mlp::new(&[d, h, 1], seed);
        let x = mk(bsz, d, &pool, 0);
        let y = mk(bsz, 1, &pool, 63);

        let mut ref_grads = Gradients::zeros_like(&mlp);
        let mut ref_loss = 0.0;
        for e in 0..bsz {
            ref_loss += accumulate_example_gradient(&mlp, x.row(e), y.row(e), &mut ref_grads);
        }

        let mut bws = BatchWorkspace::default();
        let mut grads = Gradients::zeros_like(&mlp);
        mlp.forward_batch(&mut bws, &x);
        let loss = mlp.backward_batch(&mut bws, &x, &y, &mut grads);

        prop_assert!((loss - ref_loss).abs() <= 1e-9 * (1.0 + ref_loss.abs()));
        for (li, ((dw, db), (rw, rb))) in grads.layers.iter().zip(&ref_grads.layers).enumerate() {
            for (g, w) in dw.as_slice().iter().zip(rw.as_slice()) {
                prop_assert!(
                    (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                    "layer {} dW: {} vs {}", li, g, w
                );
            }
            for (g, w) in db.iter().zip(rb) {
                prop_assert!(
                    (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                    "layer {} db: {} vs {}", li, g, w
                );
            }
        }
    }

    /// Full training runs agree between the batched and per-example
    /// loops: same epochs, same loss curve, same weights.
    #[test]
    fn training_paths_agree(
        n in 4usize..40,
        batch in 1usize..20,
        seed in 0u64..500,
    ) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 * 0.7) % 1.0, (i as f64 * 0.37) % 1.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] - 0.5 * x[1]).collect();
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: batch,
            patience: 0,
            seed,
            ..TrainConfig::default()
        };
        let mut a = Mlp::new(&[2, 6, 1], seed ^ 1);
        let mut b = a.clone();
        let ra = train(&mut a, &xs, &ys, &cfg);
        let rb = train_per_example(&mut b, &xs, &ys, &cfg);
        prop_assert_eq!(ra.epochs_run, rb.epochs_run);
        prop_assert!((ra.final_loss - rb.final_loss).abs() <= 1e-9 * (1.0 + rb.final_loss.abs()));
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            for (wa, wb) in la.weights.as_slice().iter().zip(lb.weights.as_slice()) {
                prop_assert!((wa - wb).abs() <= 1e-9 * (1.0 + wb.abs()));
            }
        }
    }
}
