//! Evaluation metrics (Sec. 5.1 "Measurements" and Fig. 12).

/// Normalized mean absolute error over a test set, as defined in the
/// paper: `mean |f_D(q) − f̂(q)| / mean |f_D(q)|`.
///
/// Returns `f64::INFINITY` when the true answers are identically zero but
/// predictions are not, and `0.0` on an empty test set.
pub fn normalized_mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "truth/pred must pair up");
    if truth.is_empty() {
        return 0.0;
    }
    let err: f64 = truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64;
    let scale: f64 = truth.iter().map(|t| t.abs()).sum::<f64>() / truth.len() as f64;
    if scale == 0.0 {
        if err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        err / scale
    }
}

/// Average Euclidean distance from each test query to its nearest
/// training query ("dist. NTQ", Fig. 12b). Brute force; used for analysis
/// only.
pub fn dist_ntq(test: &[Vec<f64>], train: &[Vec<f64>]) -> f64 {
    assert!(!train.is_empty(), "need at least one training query");
    if test.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for t in test {
        let mut best = f64::INFINITY;
        for q in train {
            let d2: f64 = t.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
            if d2 < best {
                best = d2;
            }
        }
        total += best.sqrt();
    }
    total / test.len() as f64
}

/// Relative-error quantile: the `p`-quantile (0..=1) of
/// `|truth − pred| / (|truth| + eps)`. Useful for tail-error analysis
/// beyond the paper's mean-based metric.
pub fn relative_error_quantile(truth: &[f64], pred: &[f64], p: f64, eps: f64) -> f64 {
    assert_eq!(truth.len(), pred.len(), "truth/pred must pair up");
    assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
    if truth.is_empty() {
        return 0.0;
    }
    let mut errs: Vec<f64> = truth
        .iter()
        .zip(pred)
        .map(|(t, q)| (t - q).abs() / (t.abs() + eps))
        .collect();
    errs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let idx = ((errs.len() - 1) as f64 * p).round() as usize;
    errs[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_mae_basic() {
        // errors 1,1; mean |truth| = 10 -> 0.1.
        assert!((normalized_mae(&[10.0, 10.0], &[9.0, 11.0]) - 0.1).abs() < 1e-12);
        assert_eq!(normalized_mae(&[], &[]), 0.0);
        assert_eq!(normalized_mae(&[0.0], &[1.0]), f64::INFINITY);
        assert_eq!(normalized_mae(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn dist_ntq_exact_match_is_zero() {
        let train = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let test = vec![vec![0.0, 0.0]];
        assert_eq!(dist_ntq(&test, &train), 0.0);
    }

    #[test]
    fn dist_ntq_uses_nearest() {
        let train = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
        let test = vec![vec![0.9, 0.0]];
        assert!((dist_ntq(&test, &train) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone() {
        let truth = vec![1.0, 1.0, 1.0, 1.0];
        let pred = vec![1.0, 1.1, 1.5, 3.0];
        let q50 = relative_error_quantile(&truth, &pred, 0.5, 0.0);
        let q100 = relative_error_quantile(&truth, &pred, 1.0, 0.0);
        assert!(q50 <= q100);
        assert!((q100 - 2.0).abs() < 1e-12);
    }
}
