//! Architecture search under time/space constraints (Problem 1,
//! Sec. 5.6 / Fig. 13b, Fig. 14b).
//!
//! The paper uses Optuna's Bayesian search with a parameter-count cap; we
//! use a seeded random-order grid search, which exhibits the same
//! error-ratio-vs-time convergence behaviour while staying deterministic.

use crate::sketch::{NeuroSketch, NeuroSketchConfig};
use query::error::normalized_mae;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One evaluated architecture.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Hidden-layer width (`l_first = l_rest = width`).
    pub width: usize,
    /// Total layer count `n_l`.
    pub depth: usize,
    /// Parameter count of the built sketch.
    pub params: usize,
    /// Validation normalized MAE.
    pub error: f64,
    /// Time since search start when this candidate finished.
    pub elapsed: Duration,
}

/// Search result: all evaluated candidates (in evaluation order) and the
/// index of the best.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Every evaluated candidate, in order.
    pub history: Vec<Candidate>,
    /// Index of the best (lowest-error) candidate in `history`.
    pub best: usize,
}

impl SearchResult {
    /// The winning candidate.
    pub fn best_candidate(&self) -> &Candidate {
        &self.history[self.best]
    }

    /// Running best error as a function of elapsed time — the curve of
    /// Fig. 13b.
    pub fn convergence_curve(&self) -> Vec<(Duration, f64)> {
        let mut best = f64::INFINITY;
        self.history
            .iter()
            .map(|c| {
                best = best.min(c.error);
                (c.elapsed, best)
            })
            .collect()
    }
}

/// Random-order grid search over `(width, depth)` pairs with a parameter
/// budget, evaluating on a validation split. Candidates whose parameter
/// count would exceed `param_budget` are skipped (the paper uses the
/// time/space constraint to cap parameters).
#[allow(clippy::too_many_arguments)]
pub fn grid_search(
    train_queries: &[Vec<f64>],
    train_labels: &[f64],
    val_queries: &[Vec<f64>],
    val_labels: &[f64],
    widths: &[usize],
    depths: &[usize],
    param_budget: usize,
    base: &NeuroSketchConfig,
) -> SearchResult {
    let mut grid: Vec<(usize, usize)> = widths
        .iter()
        .flat_map(|&w| depths.iter().map(move |&d| (w, d)))
        .collect();
    let mut rng = StdRng::seed_from_u64(base.seed ^ 0xA5C3);
    grid.shuffle(&mut rng);

    let start = Instant::now();
    let mut history = Vec::new();
    let mut best = usize::MAX;
    let mut best_err = f64::INFINITY;
    for (width, depth) in grid {
        let mut cfg = base.clone();
        cfg.l_first = width;
        cfg.l_rest = width;
        cfg.depth = depth;
        let Ok((sketch, _)) = NeuroSketch::build_from_labeled(train_queries, train_labels, &cfg)
        else {
            continue;
        };
        if sketch.param_count() > param_budget {
            continue;
        }
        let preds: Vec<f64> = val_queries.iter().map(|q| sketch.answer(q)).collect();
        let error = normalized_mae(val_labels, &preds);
        let cand = Candidate {
            width,
            depth,
            params: sketch.param_count(),
            error,
            elapsed: start.elapsed(),
        };
        if error < best_err {
            best_err = error;
            best = history.len();
        }
        history.push(cand);
    }
    assert!(!history.is_empty(), "no candidate fit the parameter budget");
    SearchResult { history, best }
}

/// Fig. 14b's inner loop: the smallest width (from an ascending list)
/// whose single-partition, single-hidden-layer sketch reaches validation
/// error at most `target_err`. Returns the width and the built sketch, or
/// `None` if no width reaches the target.
pub fn smallest_width_for_error(
    train_queries: &[Vec<f64>],
    train_labels: &[f64],
    val_queries: &[Vec<f64>],
    val_labels: &[f64],
    widths: &[usize],
    target_err: f64,
    base: &NeuroSketchConfig,
) -> Option<(usize, NeuroSketch)> {
    for &w in widths {
        let mut cfg = base.clone();
        cfg.tree_height = 0;
        cfg.target_partitions = 1;
        cfg.depth = 3; // one hidden layer, as in Fig. 14's setup
        cfg.l_first = w;
        cfg.l_rest = w;
        let Ok((sketch, _)) = NeuroSketch::build_from_labeled(train_queries, train_labels, &cfg)
        else {
            continue;
        };
        let preds: Vec<f64> = val_queries.iter().map(|q| sketch.answer(q)).collect();
        if normalized_mae(val_labels, &preds) <= target_err {
            return Some((w, sketch));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic query function: labels = smooth function of the query.
    fn labeled_set(n: usize, offset: f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let qs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    ((i as f64 + offset) * 0.754877) % 1.0,
                    ((i as f64 + offset) * 0.569840) % 1.0,
                ]
            })
            .collect();
        let ys = qs.iter().map(|q| q[0] + 0.5 * q[1]).collect();
        (qs, ys)
    }

    fn fast_base() -> NeuroSketchConfig {
        let mut cfg = NeuroSketchConfig::small();
        cfg.tree_height = 0;
        cfg.target_partitions = 1;
        cfg.train.epochs = 60;
        cfg
    }

    #[test]
    fn search_finds_a_candidate_and_tracks_best() {
        let (tq, tl) = labeled_set(300, 0.0);
        let (vq, vl) = labeled_set(60, 0.33);
        let res = grid_search(
            &tq,
            &tl,
            &vq,
            &vl,
            &[8, 16],
            &[3, 4],
            usize::MAX,
            &fast_base(),
        );
        assert!(!res.history.is_empty());
        let best = res.best_candidate();
        assert!(res.history.iter().all(|c| c.error >= best.error));
        let curve = res.convergence_curve();
        // Running best is monotone nonincreasing.
        assert!(curve.windows(2).all(|w| w[1].1 <= w[0].1));
    }

    #[test]
    fn budget_excludes_large_architectures() {
        let (tq, tl) = labeled_set(200, 0.0);
        let (vq, vl) = labeled_set(40, 0.5);
        // Budget that only the width-8 nets can satisfy (width-8 depth-3
        // on 2-dim input is 33 params; width-64 is 257).
        let res = grid_search(&tq, &tl, &vq, &vl, &[8, 64], &[3], 100, &fast_base());
        assert!(res.history.iter().all(|c| c.params <= 100));
        assert!(res.history.iter().all(|c| c.width == 8));
    }

    #[test]
    fn smallest_width_prefers_small() {
        let (tq, tl) = labeled_set(400, 0.0);
        let (vq, vl) = labeled_set(80, 0.25);
        let found = smallest_width_for_error(&tq, &tl, &vq, &vl, &[4, 16, 64], 0.2, &fast_base());
        let (w, sketch) = found.expect("a width should reach 0.2 on a linear target");
        assert!(w <= 64);
        assert_eq!(sketch.partitions(), 1);
    }

    #[test]
    fn impossible_target_returns_none() {
        let (tq, tl) = labeled_set(100, 0.0);
        let (vq, vl) = labeled_set(30, 0.4);
        let mut base = fast_base();
        base.train.epochs = 1; // severely undertrained
        let found = smallest_width_for_error(&tq, &tl, &vq, &vl, &[2], 1e-9, &base);
        assert!(found.is_none());
    }
}
