//! Activation functions. NeuroSketch uses ReLU on every layer except the
//! (linear) output, exactly as in Sec. 4.2 of the paper.

use serde::{Deserialize, Serialize};

/// Element-wise activation applied after a dense layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — used on all hidden layers.
    Relu,
    /// The identity — used on the output layer.
    Identity,
}

impl Activation {
    /// Apply the activation in place.
    #[inline]
    pub fn apply(self, xs: &mut [f64]) {
        match self {
            Activation::Relu => {
                for x in xs {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            Activation::Identity => {}
        }
    }

    /// Derivative evaluated at the *pre-activation* value `z`.
    ///
    /// For ReLU we use the convention `relu'(0) = 0` (subgradient choice),
    /// which is what every mainstream framework does.
    #[inline]
    pub fn derivative(self, z: f64) -> f64 {
        match self {
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut v = vec![-1.0, 0.0, 2.5];
        Activation::Relu.apply(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn identity_is_noop() {
        let mut v = vec![-1.0, 3.0];
        Activation::Identity.apply(&mut v);
        assert_eq!(v, vec![-1.0, 3.0]);
    }

    #[test]
    fn derivatives() {
        assert_eq!(Activation::Relu.derivative(-0.5), 0.0);
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative(0.5), 1.0);
        assert_eq!(Activation::Identity.derivative(-7.0), 1.0);
    }
}
