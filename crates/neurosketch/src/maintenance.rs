//! Dynamic-data support (Sec. 7 future work).
//!
//! The paper's proposed approach: "frequently test NeuroSketch, and
//! re-train the neural networks whose accuracy falls below a certain
//! threshold." [`DriftMonitor`] implements the testing half — it holds a
//! probe workload and compares the sketch against a fresh exact oracle —
//! and [`refresh`] the retraining half, rebuilding from newly labeled
//! queries with the same configuration.

use crate::sketch::{BuildReport, NeuroSketch, NeuroSketchConfig};
use crate::SketchError;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::predicate::PredicateFn;

/// Outcome of one drift check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Normalized MAE of the sketch against the current data.
    pub nmae: f64,
    /// Whether the error breached the threshold (retrain advised).
    pub stale: bool,
}

/// Periodic accuracy monitor for a deployed sketch.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    probe: Vec<Vec<f64>>,
    threshold: f64,
}

impl DriftMonitor {
    /// Monitor with a fixed probe workload and an NMAE threshold above
    /// which the sketch is declared stale.
    ///
    /// # Panics
    /// Panics on an empty probe set or nonpositive threshold.
    pub fn new(probe: Vec<Vec<f64>>, threshold: f64) -> DriftMonitor {
        assert!(!probe.is_empty(), "probe workload must be nonempty");
        assert!(threshold > 0.0, "threshold must be positive");
        DriftMonitor { probe, threshold }
    }

    /// The probe queries.
    pub fn probe(&self) -> &[Vec<f64>] {
        &self.probe
    }

    /// Compare the sketch against the *current* data (via an exact
    /// engine over it) on the probe workload.
    pub fn check(
        &self,
        sketch: &NeuroSketch,
        engine: &QueryEngine<'_>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
    ) -> DriftReport {
        let truth = engine.label_batch(pred, agg, &self.probe, 2);
        let preds: Vec<f64> = self.probe.iter().map(|q| sketch.answer(q)).collect();
        let nmae = normalized_mae(&truth, &preds);
        DriftReport {
            nmae,
            stale: nmae > self.threshold,
        }
    }
}

/// Retrain a sketch against the current data: relabel the training
/// workload and rebuild with the same configuration.
pub fn refresh(
    engine: &QueryEngine<'_>,
    pred: &dyn PredicateFn,
    agg: Aggregate,
    train_queries: &[Vec<f64>],
    cfg: &NeuroSketchConfig,
) -> Result<(NeuroSketch, BuildReport), SketchError> {
    NeuroSketch::build(engine, pred, agg, train_queries, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::simple::{gaussian, uniform};
    use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

    fn workload(seed: u64) -> Workload {
        Workload::generate(&WorkloadConfig {
            dims: 1,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::WidthBetween(0.2, 0.6),
            count: 400,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn fresh_sketch_is_not_stale() {
        let data = uniform(3_000, 1, 1);
        let engine = QueryEngine::new(&data, 0);
        let wl = workload(2);
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 120;
        let (sketch, _) =
            NeuroSketch::build(&engine, &wl.predicate, Aggregate::Avg, &wl.queries, &cfg).unwrap();
        let monitor = DriftMonitor::new(wl.queries[..100].to_vec(), 0.2);
        let report = monitor.check(&sketch, &engine, &wl.predicate, Aggregate::Avg);
        assert!(
            !report.stale,
            "fresh sketch flagged stale (nmae {})",
            report.nmae
        );
    }

    #[test]
    fn distribution_shift_is_detected_and_refresh_fixes_it() {
        // Train on uniform data, then the data "drifts" to a sharp
        // Gaussian: COUNT answers change drastically.
        let old = uniform(3_000, 1, 1);
        let old_engine = QueryEngine::new(&old, 0);
        let wl = workload(3);
        let mut cfg = NeuroSketchConfig::small();
        cfg.train.epochs = 120;
        let (sketch, _) = NeuroSketch::build(
            &old_engine,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();

        let new = gaussian(3_000, 1, 0.2, 0.05, 9);
        let new_engine = QueryEngine::new(&new, 0);
        let monitor = DriftMonitor::new(wl.queries[..100].to_vec(), 0.2);

        let drifted = monitor.check(&sketch, &new_engine, &wl.predicate, Aggregate::Count);
        assert!(drifted.stale, "drift not detected (nmae {})", drifted.nmae);

        let (fresh, _) = refresh(
            &new_engine,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .unwrap();
        let fixed = monitor.check(&fresh, &new_engine, &wl.predicate, Aggregate::Count);
        assert!(
            fixed.nmae < drifted.nmae * 0.5,
            "refresh should halve error: {} -> {}",
            drifted.nmae,
            fixed.nmae
        );
    }

    #[test]
    #[should_panic(expected = "probe workload")]
    fn empty_probe_panics() {
        let _ = DriftMonitor::new(vec![], 0.1);
    }
}
