//! Generation-keyed answer caching and in-batch deduplication.
//!
//! The paper's query-time cost is one forward pass; real AQP dashboard
//! traffic is repeat-heavy (the same COUNT/AVG tiles refresh on a
//! cadence, many clients ask identical ranges), so the cheapest query
//! is the one never recomputed. This module is the shared front every
//! serving layer can put in front of its compute path:
//!
//! * [`AnswerCache`] — a bounded, striped-lock LRU cache of finished
//!   answers keyed by `(canonical query bytes, aggregate, generation)`.
//!   The canonical bytes are the raw [`f64::to_bits`] patterns of the
//!   query vector, compared exactly: `-0.0` and `0.0` are *different*
//!   keys (the exact backend's `total_cmp` binary searches can tell
//!   them apart, and a cache must never blur what the engine
//!   distinguishes). Including the NSKM generation in the key replaces
//!   an invalidation protocol entirely: a hot swap bumps the
//!   generation, so stale entries simply stop being addressable and
//!   age out of the LRU.
//! * in-batch deduplication ([`serve_cached`] with
//!   [`CachePolicy::dedup`]) — identical queries inside one batch
//!   collapse to a single computation and the result is fanned back
//!   out in input order, before anything reaches the GEMM path.
//! * [`CachedDeployment`] — a [`Deployment`] wrapper that pins an
//!   explicit generation stamp to a shared [`AnswerCache`], the
//!   composition [`crate::deploy::LiveDeployment`] hot-swaps.
//!
//! The contract is the repo's house rule: a cached or deduplicated
//! answer is **bitwise identical** to the uncached computation at any
//! thread count. That is exactly why the front is sound — the serving
//! stack already guarantees the answer to a query does not depend on
//! the batch it arrives in (see [`crate::serve`]), so serving a stored
//! copy of the same bits, or computing a representative once, cannot
//! be observed in the output.
//!
//! Memory is bounded: every entry is charged [`entry_bytes`] against a
//! byte budget split evenly across stripes, with least-recently-used
//! eviction per stripe. Once a stripe is full, the batch front admits
//! a new key only on its *second* miss (a doorkeeper of fingerprints,
//! in the spirit of TinyLFU's admission filter): a one-shot scan of
//! never-repeated queries costs no inserts and cannot flush the
//! resident working set, while genuinely repeating keys become
//! resident from their second occurrence. The admission gate is probed
//! lock-free, and a batch whose generation falls outside the cache's
//! resident generation range (the steady state right after a hot swap)
//! skips the stripe locks entirely — the cold path costs one hash, one
//! dedup probe and one doorkeeper mark per query on top of the compute
//! it was going to do anyway.

use crate::deploy::{DeployStats, Deployment, DeploymentInfo};
use query::aggregate::Aggregate;
use std::sync::atomic::{AtomicU16, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Caching/deduplication knob carried by serving options
/// ([`crate::serve::ServeOptions::cache`],
/// [`crate::cluster::ClusterOptions::cache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Total answer-cache budget in bytes, split evenly across
    /// stripes; `0` disables caching entirely (deduplication may still
    /// be on). Entries are charged [`entry_bytes`].
    pub capacity_bytes: usize,
    /// Lock stripes the budget and the key space are sharded across
    /// (rounded up to a power of two, minimum 1). More stripes means
    /// less contention between concurrent batches.
    pub stripes: usize,
    /// Collapse bitwise-identical queries within one batch to a single
    /// computation, fanning the answer back out in input order.
    pub dedup: bool,
}

impl CachePolicy {
    /// Everything off: batches go straight to the compute path.
    pub const OFF: CachePolicy = CachePolicy {
        capacity_bytes: 0,
        stripes: 1,
        dedup: false,
    };

    /// Cache `capacity_bytes` of answers across 8 stripes, with
    /// in-batch deduplication on — the one-knob production setting.
    pub fn cached(capacity_bytes: usize) -> CachePolicy {
        CachePolicy {
            capacity_bytes,
            stripes: 8,
            dedup: true,
        }
    }

    /// In-batch deduplication without any answer retention — bounded
    /// memory use of exactly nothing, still collapses repeat-heavy
    /// batches.
    pub fn dedup_only() -> CachePolicy {
        CachePolicy {
            capacity_bytes: 0,
            stripes: 1,
            dedup: true,
        }
    }

    /// Whether the front does anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0 || self.dedup
    }

    /// Whether answers are retained across batches.
    pub fn caching(&self) -> bool {
        self.capacity_bytes > 0
    }
}

impl Default for CachePolicy {
    /// Off. Caching changes no answers, but it does retain memory and
    /// alter tallies — production deployments opt in explicitly.
    fn default() -> CachePolicy {
        CachePolicy::OFF
    }
}

/// The aggregate byte folded into every cache key, so one shared
/// [`AnswerCache`] can serve deployments answering different
/// aggregates over the same query vectors without collisions. `0` is
/// reserved for deployments whose aggregate is not declared (a bare
/// routed sketch serves whatever it was trained for).
pub fn aggregate_tag(agg: Aggregate) -> u8 {
    match agg {
        Aggregate::Count => 1,
        Aggregate::Sum => 2,
        Aggregate::Avg => 3,
        Aggregate::Std => 4,
        Aggregate::Median => 5,
    }
}

/// Bytes one cached entry of a `dims`-dimensional query is charged
/// against the budget: the canonical key bytes (`8 × dims` coordinate
/// bit patterns plus the 9-byte generation + aggregate prefix), the
/// 8-byte answer, and a flat 47-byte accounting constant for the
/// index, chain and LRU bookkeeping around it. The same
/// `encoded_len`-style arithmetic as [`crate::net`]'s frame
/// accounting: capacity planning is `budget / entry_bytes(dims)`
/// entries, no measurement needed.
pub const fn entry_bytes(dims: usize) -> usize {
    8 * dims + 9 + 8 + 47
}

/// Cumulative counters and current occupancy of an [`AnswerCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to compute.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted to make room under the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub bytes: usize,
    /// The configured budget.
    pub capacity_bytes: usize,
}

const NIL: u32 = u32::MAX;

/// The probe half of an entry: everything a chain walk reads, packed
/// into 16 bytes so a miss touches a quarter cache line per hop — the
/// miss path is the front's steady state on uncacheable traffic, and
/// the less it drags through the data cache, the less it slows the
/// compute the misses still have to do.
#[derive(Clone, Copy)]
struct ProbeSlot {
    hash: u64,
    /// Next slot in the bucket chain.
    chain: u32,
    /// `tag | dims << 8` — the non-coordinate half of the key.
    meta: u32,
}

/// The payload half, only touched on a hash match (hit verification,
/// LRU maintenance) or an insert/eviction.
#[derive(Clone, Copy)]
struct Payload {
    generation: u64,
    value: f64,
    lru_prev: u32,
    lru_next: u32,
}

/// Doorkeeper slots per cache (8 KB of `u16` fingerprints, fixed
/// metadata outside the byte budget). On an uncacheable stream every
/// miss writes one doorkeeper slot, so the table is sized to sit in L1
/// rather than drag through the data cache the compute behind the
/// misses still needs. A collision, fingerprint false-positive, or
/// racing mark from another thread only delays (or spuriously grants)
/// one admission — never affects answers.
const DOOR_SLOTS: usize = 4096;

/// One lock stripe: a chained hash index over a slab of entries with
/// an intrusive LRU list, all flat `Vec`s — no per-entry allocation on
/// the steady-state path (slots are recycled through a free list).
struct Stripe {
    /// Bucket heads (slot index or `NIL`); length is a power of two.
    buckets: Vec<u32>,
    /// The probe half of the entry slab (chain walks read only this).
    slots: Vec<ProbeSlot>,
    /// The payload half, parallel to `slots`.
    pay: Vec<Payload>,
    /// Coordinate bit patterns, `stride` words per slot.
    coords: Vec<u64>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
    live: usize,
    bytes: usize,
    /// Coordinate words per entry, fixed by the first insert (a cache
    /// fronts one deployment, whose queries share a dimensionality);
    /// other widths are served uncached.
    stride: usize,
    /// Range of generations with entries in this stripe (`lo > hi`
    /// means none). A lookup whose generation falls outside the range
    /// cannot match and skips the index probe — after a hot swap this
    /// keeps new-generation traffic from walking chains of stale
    /// entries while they age out. Eviction leaves the range alone
    /// (conservative: it can only widen), so the filter is never wrong,
    /// merely less sharp until the stripe turns over.
    gen_lo: u64,
    gen_hi: u64,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            buckets: vec![NIL; 16],
            slots: Vec::new(),
            pay: Vec::new(),
            coords: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            live: 0,
            bytes: 0,
            stride: 0,
            gen_lo: u64::MAX,
            gen_hi: 0,
        }
    }

    fn key_matches(&self, slot: usize, h: u64, meta: u32, gen: u64, q: &[f64]) -> bool {
        let s = &self.slots[slot];
        if s.hash != h || s.meta != meta || self.pay[slot].generation != gen {
            return false;
        }
        let base = slot * self.stride;
        q.iter()
            .zip(&self.coords[base..base + self.stride])
            .all(|(c, &w)| c.to_bits() == w)
    }

    /// Find the live slot for a key, or `None`. Does not touch the LRU.
    fn find(&self, h: u64, tag: u8, gen: u64, q: &[f64]) -> Option<usize> {
        if self.stride != q.len() || self.live == 0 || gen < self.gen_lo || gen > self.gen_hi {
            return None;
        }
        let meta = pack_meta(tag, q.len());
        let mut slot = self.buckets[(h as usize) & (self.buckets.len() - 1)];
        while slot != NIL {
            let s = slot as usize;
            if self.key_matches(s, h, meta, gen, q) {
                return Some(s);
            }
            slot = self.slots[s].chain;
        }
        None
    }

    /// Move a live slot to the LRU front.
    fn touch(&mut self, slot: usize) {
        let s = slot as u32;
        if self.head == s {
            return;
        }
        let (p, n) = (self.pay[slot].lru_prev, self.pay[slot].lru_next);
        if p != NIL {
            self.pay[p as usize].lru_next = n;
        }
        if n != NIL {
            self.pay[n as usize].lru_prev = p;
        }
        if self.tail == s {
            self.tail = p;
        }
        self.pay[slot].lru_prev = NIL;
        self.pay[slot].lru_next = self.head;
        if self.head != NIL {
            self.pay[self.head as usize].lru_prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    /// Unlink and recycle the least-recently-used entry.
    fn evict_tail(&mut self) {
        let slot = self.tail as usize;
        debug_assert!(self.tail != NIL);
        // LRU unlink.
        let p = self.pay[slot].lru_prev;
        self.tail = p;
        if p != NIL {
            self.pay[p as usize].lru_next = NIL;
        } else {
            self.head = NIL;
        }
        // Bucket-chain unlink.
        let b = (self.slots[slot].hash as usize) & (self.buckets.len() - 1);
        let mut cur = self.buckets[b];
        if cur == slot as u32 {
            self.buckets[b] = self.slots[slot].chain;
        } else {
            while cur != NIL {
                let c = cur as usize;
                if self.slots[c].chain == slot as u32 {
                    self.slots[c].chain = self.slots[slot].chain;
                    break;
                }
                cur = self.slots[c].chain;
            }
        }
        self.free.push(slot as u32);
        self.live -= 1;
        self.bytes -= entry_bytes(self.stride);
    }

    /// Insert (or refresh) a key. Returns `(entries evicted to fit,
    /// whether a new entry was written — `false` means a resident key
    /// was merely refreshed)`, or `None` if the entry can never fit
    /// this stripe's budget.
    ///
    /// `check_dup: false` skips the pre-insert lookup — sound only when
    /// the caller just probed this key under this same lock cycle and
    /// missed ([`serve_cached`]'s insert pass over deduped misses). A
    /// racing batch may then insert the same key twice; both copies
    /// hold bitwise-equal values (determinism contract), lookups return
    /// the chain head, and the loser ages out of the LRU — correctness
    /// is unaffected, only a few bytes of budget.
    #[allow(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        h: u64,
        tag: u8,
        gen: u64,
        q: &[f64],
        v: f64,
        budget: usize,
        check_dup: bool,
    ) -> Option<(u64, bool)> {
        if self.stride != 0 && self.stride != q.len() {
            return None;
        }
        if check_dup {
            if let Some(slot) = self.find(h, tag, gen, q) {
                // A concurrent batch computed the same key first; the
                // values are bitwise equal by the determinism contract,
                // so refreshing recency is all that is left to do.
                self.pay[slot].value = v;
                self.touch(slot);
                return Some((0, false));
            }
        }
        let need = entry_bytes(q.len());
        if need > budget {
            return None;
        }
        // Commit the stripe to this width only once an entry actually
        // fits — a rejected oversized first insert must not poison the
        // stripe for every later (cacheable) width.
        self.stride = q.len();
        let mut evicted = 0u64;
        while self.bytes + need > budget {
            self.evict_tail();
            evicted += 1;
        }
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                let s = self.slots.len();
                self.slots.push(ProbeSlot {
                    hash: 0,
                    chain: NIL,
                    meta: 0,
                });
                self.pay.push(Payload {
                    generation: 0,
                    value: 0.0,
                    lru_prev: NIL,
                    lru_next: NIL,
                });
                self.coords.resize(self.coords.len() + self.stride, 0);
                s
            }
        };
        let base = slot * self.stride;
        for (w, c) in self.coords[base..base + self.stride].iter_mut().zip(q) {
            *w = c.to_bits();
        }
        self.live += 1;
        self.bytes += need;
        // Keep the load factor at or below 1/2: a miss walks its whole
        // chain, so short chains are what the cold path pays for.
        if self.live * 2 > self.buckets.len() {
            self.grow_buckets();
        }
        let b = (h as usize) & (self.buckets.len() - 1);
        self.slots[slot] = ProbeSlot {
            hash: h,
            chain: self.buckets[b],
            meta: pack_meta(tag, q.len()),
        };
        self.pay[slot] = Payload {
            generation: gen,
            value: v,
            // LRU push-front.
            lru_prev: NIL,
            lru_next: self.head,
        };
        self.buckets[b] = slot as u32;
        if self.head != NIL {
            self.pay[self.head as usize].lru_prev = slot as u32;
        }
        self.head = slot as u32;
        if self.tail == NIL {
            self.tail = slot as u32;
        }
        self.gen_lo = self.gen_lo.min(gen);
        self.gen_hi = self.gen_hi.max(gen);
        Some((evicted, true))
    }

    /// Double the bucket array and re-chain every live slot.
    fn grow_buckets(&mut self) {
        let cap = self.buckets.len() * 2;
        self.buckets.clear();
        self.buckets.resize(cap, NIL);
        // Live slots are exactly the LRU list.
        let mut slot = self.head;
        while slot != NIL {
            let s = slot as usize;
            let next = self.pay[s].lru_next;
            let b = (self.slots[s].hash as usize) & (cap - 1);
            self.slots[s].chain = self.buckets[b];
            self.buckets[b] = slot;
            slot = next;
        }
    }

    fn clear(&mut self) {
        *self = Stripe::new();
    }
}

fn pack_meta(tag: u8, dims: usize) -> u32 {
    // `dims` beyond 24 bits cannot collide anyway: a stripe only holds
    // one width (`stride`), which `find` checks first.
    tag as u32 | ((dims as u32) & 0x00FF_FFFF) << 8
}

/// Hash the canonical key `(tag, generation, coordinate bits)` — a
/// multiply-xor mix, a few cycles per word, shared by the cache index
/// and the in-batch dedup table.
#[inline]
pub(crate) fn key_hash(tag: u8, gen: u64, q: &[f64]) -> u64 {
    #[inline]
    fn mix(mut h: u64, w: u64) -> u64 {
        h ^= w;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^ (h >> 33)
    }
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (tag as u64 | (q.len() as u64) << 8);
    h = mix(h, gen);
    for c in q {
        h = mix(h, c.to_bits());
    }
    mix(h, 0xD6E8_FEB8_6659_FD93)
}

/// Bitwise equality of two query vectors — the cache's notion of
/// "identical query". Deliberately *not* float equality: `-0.0` and
/// `0.0` are distinct, and a NaN pattern equals exactly itself.
#[inline]
fn same_bits(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A bounded, sharded, generation-keyed LRU cache of finished answers.
///
/// Thread-safe: lookups and inserts take one stripe's mutex; batches
/// lock each stripe at most twice (one probe pass, one insert pass)
/// via [`serve_cached`]. Memory is bounded by the byte budget, split
/// evenly across stripes, with per-stripe LRU eviction.
pub struct AnswerCache {
    stripes: Vec<Mutex<Stripe>>,
    stripe_mask: usize,
    stripe_budget: usize,
    capacity: usize,
    /// Doorkeeper admission gate, shared by all stripes and probed
    /// lock-free (relaxed atomics; races only perturb one admission).
    /// See [`AnswerCache::admit`].
    door: Vec<AtomicU16>,
    /// Per-stripe occupancy mirror for the admission gate's "still
    /// filling" check, readable without the stripe lock; exact budget
    /// enforcement stays in [`Stripe::insert`]. Per stripe, not a
    /// cache-wide sum: stripes fill unevenly, so a global count sits
    /// just under capacity forever and would admit (and churn) every
    /// key on a full cache.
    stripe_bytes: Vec<AtomicUsize>,
    /// Cache-wide generation range (`lo > hi` = empty), read lock-free
    /// by [`serve_cached`]: a batch whose generation falls outside it
    /// cannot hit anything and skips the stripe machinery entirely —
    /// the post-hot-swap batches land here until the new generation's
    /// repeats earn their way back in through the doorkeeper.
    gen_lo: AtomicU64,
    gen_hi: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl AnswerCache {
    /// A cache holding at most `capacity_bytes` of entries across
    /// `stripes` lock stripes (rounded up to a power of two, min 1).
    pub fn new(capacity_bytes: usize, stripes: usize) -> AnswerCache {
        let stripes = stripes.max(1).next_power_of_two();
        AnswerCache {
            stripes: (0..stripes).map(|_| Mutex::new(Stripe::new())).collect(),
            stripe_mask: stripes - 1,
            stripe_budget: capacity_bytes / stripes,
            capacity: capacity_bytes,
            door: (0..DOOR_SLOTS).map(|_| AtomicU16::new(0)).collect(),
            stripe_bytes: (0..stripes).map(|_| AtomicUsize::new(0)).collect(),
            gen_lo: AtomicU64::new(u64::MAX),
            gen_hi: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache sized by a [`CachePolicy`] (shared [`Arc`], the shape
    /// every serving layer stores).
    pub fn from_policy(policy: &CachePolicy) -> Arc<AnswerCache> {
        Arc::new(AnswerCache::new(policy.capacity_bytes, policy.stripes))
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    fn stripe_of(&self, h: u64) -> usize {
        ((h >> 32) as usize) & self.stripe_mask
    }

    /// Admission gate for the batch front ([`serve_cached`]'s insert
    /// pass — explicit [`AnswerCache::insert`] always admits).
    ///
    /// While the cache has free budget, everything is admitted. Once it
    /// is full, a first-time key only leaves a fingerprint in the
    /// doorkeeper and is *not* inserted; it gets admitted (and may
    /// evict a stripe's LRU entry) on its second miss. So a one-shot
    /// scan of unique queries never pays insert/eviction cost and —
    /// just as important — never flushes the resident working set,
    /// while any key that repeats becomes resident from its second
    /// occurrence. Lock-free: all accesses are relaxed atomics, and a
    /// racing mark from another batch at worst delays or duplicates one
    /// admission.
    fn admit(&self, h: u64, dims: usize) -> bool {
        let occupied = self.stripe_bytes[self.stripe_of(h)].load(Ordering::Relaxed);
        if occupied + entry_bytes(dims) <= self.stripe_budget {
            return true;
        }
        let fp = (h >> 48) as u16 | 1;
        let d = &self.door[(h as usize) & (DOOR_SLOTS - 1)];
        if d.load(Ordering::Relaxed) == fp {
            // Second miss: free the slot and let the insert through.
            d.store(0, Ordering::Relaxed);
            true
        } else {
            d.store(fp, Ordering::Relaxed);
            false
        }
    }

    /// Insert under an already-held stripe lock, keeping the
    /// cache-level bookkeeping (occupancy estimate, generation range,
    /// counters) in step with the stripe's.
    #[allow(clippy::too_many_arguments)]
    fn insert_locked(
        &self,
        si: usize,
        stripe: &mut Stripe,
        h: u64,
        tag: u8,
        gen: u64,
        q: &[f64],
        v: f64,
        check_dup: bool,
    ) {
        let before = stripe.bytes;
        if let Some((evicted, inserted)) =
            stripe.insert(h, tag, gen, q, v, self.stripe_budget, check_dup)
        {
            // A refresh of a resident key is not an insertion — only a
            // genuinely new entry bumps the counter.
            if inserted {
                self.insertions.fetch_add(1, Ordering::Relaxed);
            }
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            let after = stripe.bytes;
            if after >= before {
                self.stripe_bytes[si].fetch_add(after - before, Ordering::Relaxed);
            } else {
                self.stripe_bytes[si].fetch_sub(before - after, Ordering::Relaxed);
            }
            self.gen_lo.fetch_min(gen, Ordering::Relaxed);
            self.gen_hi.fetch_max(gen, Ordering::Relaxed);
        }
    }

    /// Look one key up, refreshing its recency on a hit.
    pub fn get(&self, tag: u8, generation: u64, query: &[f64]) -> Option<f64> {
        let h = key_hash(tag, generation, query);
        let mut stripe = self.stripes[self.stripe_of(h)]
            .lock()
            .expect("cache stripe");
        match stripe.find(h, tag, generation, query) {
            Some(slot) => {
                stripe.touch(slot);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stripe.pay[slot].value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert one answer, evicting least-recently-used entries as
    /// needed. A no-op when the entry can never fit its stripe's
    /// budget share. Explicit inserts bypass the batch front's
    /// second-miss admission gate — the caller has decided this key is
    /// worth caching.
    pub fn insert(&self, tag: u8, generation: u64, query: &[f64], value: f64) {
        let h = key_hash(tag, generation, query);
        let si = self.stripe_of(h);
        let mut stripe = self.stripes[si].lock().expect("cache stripe");
        self.insert_locked(si, &mut stripe, h, tag, generation, query, value, true);
    }

    /// Drop every entry (counters are kept — they are cumulative).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("cache stripe").clear();
        }
        for d in &self.door {
            d.store(0, Ordering::Relaxed);
        }
        for b in &self.stripe_bytes {
            b.store(0, Ordering::Relaxed);
        }
        self.gen_lo.store(u64::MAX, Ordering::Relaxed);
        self.gen_hi.store(0, Ordering::Relaxed);
    }

    /// Counters and occupancy. Occupancy sums over stripes under their
    /// locks; counters are relaxed atomics.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0, 0);
        for stripe in &self.stripes {
            let s = stripe.lock().expect("cache stripe");
            entries += s.live;
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity_bytes: self.capacity,
        }
    }
}

/// What one batch through the front did, for the layer's tally
/// ([`crate::serve::ServeStats`], [`DeployStats`], …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontTally {
    /// Queries answered from the cache.
    pub cache_hits: usize,
    /// Cache lookups that fell through to compute (0 with caching
    /// off).
    pub cache_misses: usize,
    /// Queries collapsed onto an identical query in the same batch.
    pub dedup_hits: usize,
}

/// Map each query to the index of the first bitwise-identical query in
/// the batch (itself, for first occurrences). Returns the map and the
/// number of distinct queries. Open-addressed over the precomputed
/// hashes — one table allocation per batch, no per-query allocation.
pub(crate) fn dedup_reps(queries: &[Vec<f64>], hashes: &[u64]) -> (Vec<u32>, usize) {
    let n = queries.len();
    let cap = (n * 2).next_power_of_two();
    let mask = cap - 1;
    let mut table = vec![0u32; cap]; // slot = input index + 1, 0 = empty
    let mut rep = vec![0u32; n];
    let mut distinct = 0usize;
    for i in 0..n {
        let h = hashes[i];
        let mut j = (h as usize) & mask;
        loop {
            let slot = table[j];
            if slot == 0 {
                table[j] = (i + 1) as u32;
                rep[i] = i as u32;
                distinct += 1;
                break;
            }
            let c = (slot - 1) as usize;
            if hashes[c] == h && same_bits(&queries[c], &queries[i]) {
                rep[i] = c as u32;
                break;
            }
            j = (j + 1) & mask;
        }
    }
    (rep, distinct)
}

/// The in-batch dedup table of one [`serve_cached`] call,
/// open-addressed, probed once per query. The narrow form (batches
/// under 65535 queries) packs `index + 1` (low 16 bits) with a 16-bit
/// hash fingerprint (high bits), so a colliding slot is rejected *in
/// place* — no dereference of the colliding key at all; a fingerprint
/// false positive only costs one coordinate compare. Larger batches
/// fall back to a plain index table plus a hash side array.
struct DedupProbe {
    table: Vec<u32>,
    /// Wide form only: hash of each query seen so far, by position.
    hashes: Vec<u64>,
    mask: usize,
    narrow: bool,
    enabled: bool,
}

impl DedupProbe {
    fn new(n: usize, enabled: bool) -> DedupProbe {
        let cap = (n * 2).next_power_of_two();
        let narrow = n < u16::MAX as usize;
        DedupProbe {
            table: if enabled { vec![0u32; cap] } else { Vec::new() },
            hashes: Vec::with_capacity(if enabled && !narrow { n } else { 0 }),
            mask: cap - 1,
            narrow,
            enabled,
        }
    }

    /// Representative index for query `i` (itself, for a first
    /// occurrence), recording it for later queries to collapse onto.
    /// Must be called exactly once per index, in input order.
    #[inline]
    fn rep(&mut self, i: usize, h: u64, queries: &[Vec<f64>]) -> usize {
        if !self.enabled {
            return i;
        }
        let q = &queries[i];
        let mut j = (h as usize) & self.mask;
        if self.narrow {
            let fp = ((h >> 32) as u32) & 0xFFFF_0000;
            loop {
                let e = self.table[j];
                if e == 0 {
                    self.table[j] = fp | (i as u32 + 1);
                    return i;
                }
                if (e & 0xFFFF_0000) == fp {
                    let cand = (e & 0xFFFF) as usize - 1;
                    if same_bits(&queries[cand], q) {
                        return cand;
                    }
                }
                j = (j + 1) & self.mask;
            }
        } else {
            self.hashes.push(h);
            loop {
                let e = self.table[j];
                if e == 0 {
                    self.table[j] = i as u32 + 1;
                    return i;
                }
                let cand = e as usize - 1;
                if self.hashes[cand] == h && same_bits(&queries[cand], q) {
                    return cand;
                }
                j = (j + 1) & self.mask;
            }
        }
    }
}

/// Serve one batch through the dedup + cache front.
///
/// `cache` is `(cache, aggregate tag, generation)` or `None`;
/// `compute` receives the input indices (in input order) of the
/// queries that must actually be computed and returns their answers in
/// the same order. Answers come back in input order, bitwise identical
/// to calling `compute` on the full batch — duplicates receive their
/// representative's bits, hits receive the bits stored when the key
/// was computed.
///
/// This is the one implementation of the front; `SketchServer`,
/// `ShardedServer`, `Cluster` and [`CachedDeployment`] all call it
/// with their own compute closure.
pub fn serve_cached<F>(
    cache: Option<(&AnswerCache, u8, u64)>,
    dedup: bool,
    queries: &[Vec<f64>],
    compute: F,
) -> (Vec<f64>, FrontTally)
where
    F: FnOnce(&[usize]) -> Vec<f64>,
{
    let n = queries.len();
    let mut tally = FrontTally::default();
    if n == 0 {
        return (Vec::new(), tally);
    }
    let (tag, gen) = match cache {
        Some((_, t, g)) => (t, g),
        None => (0, 0),
    };
    let mut out: Vec<f64>;
    match cache {
        Some((c, tag, gen)) if c.capacity > 0 => {
            // Allocated lazily: a batch of all-new queries (the cold
            // path) never zeroes it — the computed values are moved in
            // wholesale at the end.
            out = Vec::new();
            // Duplicates are recorded as `(index, representative)`
            // pairs so a duplicate-free batch pays nothing for the
            // fan-out bookkeeping.
            let mut dups: Vec<(u32, u32)> = Vec::new();
            let mut probe = DedupProbe::new(n, dedup);
            let lo = c.gen_lo.load(Ordering::Relaxed);
            let hi = c.gen_hi.load(Ordering::Relaxed);
            if gen < lo || gen > hi {
                // Generation fast path: no resident entry carries this
                // batch's generation, so not one lookup can hit — which
                // is every batch right after a hot swap (and, in a
                // fresh cache, before the first insert). One lock-free
                // sweep does it all: hash, in-batch dedup, doorkeeper
                // admission marks; no stripe lock is taken unless a key
                // actually earned admission.
                let mut misses: Vec<usize> = Vec::with_capacity(n);
                let mut admitted: Vec<(u32, u64)> = Vec::new();
                for (i, q) in queries.iter().enumerate() {
                    let h = key_hash(tag, gen, q);
                    let r = probe.rep(i, h, queries);
                    if r == i {
                        misses.push(i);
                        if c.admit(h, q.len()) {
                            admitted.push((i as u32, h));
                        }
                    } else {
                        dups.push((i as u32, r as u32));
                    }
                }
                tally.dedup_hits = dups.len();
                tally.cache_misses = misses.len();
                c.misses.fetch_add(misses.len() as u64, Ordering::Relaxed);
                let values = compute(&misses);
                debug_assert_eq!(values.len(), misses.len());
                if misses.len() == n {
                    // Everything missed: `misses` is `0..n` in order,
                    // so the computed values *are* the batch answer.
                    out = values;
                } else {
                    out = vec![0.0; n];
                    for (&i, &v) in misses.iter().zip(&values) {
                        out[i] = v;
                    }
                }
                // Steady state on uncacheable traffic admits nothing;
                // right after a swap, the new generation's repeats land
                // here and re-populate the cache.
                for &(i, h) in &admitted {
                    let i = i as usize;
                    let si = c.stripe_of(h);
                    let mut stripe = c.stripes[si].lock().expect("cache stripe");
                    c.insert_locked(si, &mut stripe, h, tag, gen, &queries[i], out[i], !dedup);
                }
            } else {
                // Pass 1, fused: hash each query, dedup-probe it, and
                // stripe-group the representatives — one sweep over the
                // batch instead of three. Each group entry carries
                // `(index, hash)` so the later passes never index a
                // side array of hashes — on a cold batch every such
                // read is a cache miss the compute behind it ends up
                // paying for.
                let mut groups: Vec<Vec<(u32, u64)>> =
                    vec![Vec::with_capacity(n / c.stripes.len() + 8); c.stripes.len()];
                for (i, q) in queries.iter().enumerate() {
                    let h = key_hash(tag, gen, q);
                    let r = probe.rep(i, h, queries);
                    if r == i {
                        groups[c.stripe_of(h)].push((i as u32, h));
                    } else {
                        dups.push((i as u32, r as u32));
                    }
                }
                tally.dedup_hits = dups.len();

                // Pass 2: per stripe, under one lock hold: look every
                // representative up, and decide *admission* for the
                // misses right here — so the post-compute insert pass
                // only revisits the keys actually being admitted, which
                // on a stream of never-repeated queries is none at all.
                const DUP: u8 = 0;
                const HIT: u8 = 1;
                const MISS_ADMIT: u8 = 2;
                const MISS_SKIP: u8 = 3;
                let mut state = vec![DUP; n];
                for (si, group) in groups.iter().enumerate() {
                    if group.is_empty() {
                        continue;
                    }
                    let mut stripe = c.stripes[si].lock().expect("cache stripe");
                    for &(i, h) in group {
                        let i = i as usize;
                        match stripe.find(h, tag, gen, &queries[i]) {
                            Some(slot) => {
                                stripe.touch(slot);
                                if out.is_empty() {
                                    out = vec![0.0; n];
                                }
                                out[i] = stripe.pay[slot].value;
                                state[i] = HIT;
                            }
                            None => {
                                state[i] = if c.admit(h, queries[i].len()) {
                                    MISS_ADMIT
                                } else {
                                    MISS_SKIP
                                };
                            }
                        }
                    }
                }
                let mut misses = Vec::new();
                let mut any_admitted = false;
                for (i, &s) in state.iter().enumerate() {
                    if s >= MISS_ADMIT {
                        misses.push(i);
                        any_admitted |= s == MISS_ADMIT;
                    }
                }
                tally.cache_hits = n - tally.dedup_hits - misses.len();
                tally.cache_misses = misses.len();
                c.hits.fetch_add(tally.cache_hits as u64, Ordering::Relaxed);
                c.misses
                    .fetch_add(tally.cache_misses as u64, Ordering::Relaxed);
                if !misses.is_empty() {
                    let values = compute(&misses);
                    debug_assert_eq!(values.len(), misses.len());
                    if misses.len() == n {
                        // Everything missed: `misses` is `0..n` in
                        // order, so the computed values *are* the batch
                        // answer.
                        out = values;
                    } else {
                        if out.is_empty() {
                            out = vec![0.0; n];
                        }
                        for (&i, &v) in misses.iter().zip(&values) {
                            out[i] = v;
                        }
                    }
                } else if out.is_empty() {
                    // n > 0 with no misses implies at least one hit
                    // filled `out` — this arm is unreachable, but keep
                    // `out` sized defensively rather than prove it at a
                    // distance.
                    out = vec![0.0; n];
                }
                if any_admitted {
                    // Insert pass over the admitted keys only. The
                    // pass-1 groups are already stripe-partitioned, so
                    // walk them again, skipping everything pass 2 did
                    // not admit, and only take a stripe's lock once an
                    // admitted key of its group actually comes up. With
                    // dedup on, the admitted keys are distinct
                    // representatives that just probed absent — skip
                    // the pre-insert lookup (see [`Stripe::insert`]);
                    // with dedup off, a batch may carry the same key
                    // twice, so the lookup stays.
                    let check_dup = !dedup;
                    for (si, group) in groups.iter().enumerate() {
                        let mut stripe = None;
                        for &(i, h) in group {
                            let i = i as usize;
                            if state[i] != MISS_ADMIT {
                                continue;
                            }
                            let guard = stripe
                                .get_or_insert_with(|| c.stripes[si].lock().expect("cache stripe"));
                            c.insert_locked(si, guard, h, tag, gen, &queries[i], out[i], check_dup);
                        }
                    }
                }
            }
            // Fan duplicates back out. A representative is always a
            // key's first occurrence — never itself a duplicate — so
            // `out[r]` is already settled by the hit/miss paths above.
            for &(i, r) in &dups {
                out[i as usize] = out[r as usize];
            }
        }
        _ => {
            out = vec![0.0; n];
            let rep: Option<Vec<u32>> = if dedup {
                let hashes: Vec<u64> = queries.iter().map(|q| key_hash(tag, gen, q)).collect();
                let (rep, distinct) = dedup_reps(queries, &hashes);
                tally.dedup_hits = n - distinct;
                Some(rep)
            } else {
                None
            };
            let is_rep = |i: usize| rep.as_ref().is_none_or(|r| r[i] as usize == i);
            let misses: Vec<usize> = (0..n).filter(|&i| is_rep(i)).collect();
            if !misses.is_empty() {
                let values = compute(&misses);
                debug_assert_eq!(values.len(), misses.len());
                for (&i, &v) in misses.iter().zip(&values) {
                    out[i] = v;
                }
            }
            if let Some(rep) = &rep {
                for i in 0..n {
                    let r = rep[i] as usize;
                    if r != i {
                        out[i] = out[r];
                    }
                }
            }
        }
    }
    (out, tally)
}

/// A [`Deployment`] served through a shared [`AnswerCache`] under an
/// explicit generation stamp.
///
/// This is the composition live maintenance uses: the cache [`Arc`] is
/// shared across swaps, each generation gets its own wrapper, and
/// because the generation is part of every key a swap yields **zero
/// stale hits by construction** — generation `G + 1` lookups cannot
/// address generation `G` entries, which simply age out of the LRU.
pub struct CachedDeployment {
    inner: Box<dyn Deployment>,
    cache: Arc<AnswerCache>,
    generation: u64,
    tag: u8,
    dedup: bool,
}

impl CachedDeployment {
    /// Wrap `inner`, keying every cache entry with `generation` and no
    /// aggregate tag (the wrapped deployment answers one aggregate).
    /// In-batch deduplication is on; [`CachedDeployment::without_dedup`]
    /// turns it off.
    pub fn new(
        inner: impl Deployment + 'static,
        cache: Arc<AnswerCache>,
        generation: u64,
    ) -> CachedDeployment {
        CachedDeployment {
            inner: Box::new(inner),
            cache,
            generation,
            tag: 0,
            dedup: true,
        }
    }

    /// Fold `agg` into every key — required when one shared cache
    /// fronts deployments serving *different* aggregates over the same
    /// query vectors.
    pub fn with_aggregate(
        inner: impl Deployment + 'static,
        cache: Arc<AnswerCache>,
        generation: u64,
        agg: Aggregate,
    ) -> CachedDeployment {
        CachedDeployment {
            inner: Box::new(inner),
            cache,
            generation,
            tag: aggregate_tag(agg),
            dedup: true,
        }
    }

    /// Disable in-batch deduplication (caching stays on).
    pub fn without_dedup(mut self) -> CachedDeployment {
        self.dedup = false;
        self
    }

    /// The shared cache (hand the same [`Arc`] to the next
    /// generation's wrapper).
    pub fn cache(&self) -> &Arc<AnswerCache> {
        &self.cache
    }

    /// The generation stamped into this wrapper's keys.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The wrapped deployment.
    pub fn inner(&self) -> &dyn Deployment {
        self.inner.as_ref()
    }
}

impl Deployment for CachedDeployment {
    fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats) {
        let mut inner_stats = DeployStats::default();
        let (answers, tally) = serve_cached(
            Some((&self.cache, self.tag, self.generation)),
            self.dedup,
            queries,
            |misses| {
                // All-miss batches (cold traffic) pass straight through
                // without copying a single query.
                if misses.len() == queries.len() {
                    let (values, stats) = self.inner.answer_batch(queries);
                    inner_stats = stats;
                    return values;
                }
                let sub: Vec<Vec<f64>> = misses.iter().map(|&i| queries[i].clone()).collect();
                let (values, stats) = self.inner.answer_batch(&sub);
                inner_stats = stats;
                values
            },
        );
        let stats = DeployStats {
            queries: queries.len(),
            cache_hits: tally.cache_hits,
            cache_misses: tally.cache_misses,
            dedup_hits: tally.dedup_hits,
            shard_count: 1.max(inner_stats.shard_count),
            ..inner_stats
        };
        (answers, stats)
    }

    fn moments_batch(&self, queries: &[Vec<f64>]) -> Option<Vec<query::aggregate::Moments>> {
        // Moments are not cached (the cache stores finished answers);
        // the moment surface passes straight through.
        self.inner.moments_batch(queries)
    }

    fn describe(&self) -> DeploymentInfo {
        DeploymentInfo {
            generation: Some(self.generation),
            ..self.inner.describe()
        }
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }

    #[test]
    fn hit_returns_inserted_bits_and_counts() {
        let cache = AnswerCache::new(1 << 16, 4);
        let query = q(&[0.25, 0.75]);
        assert_eq!(cache.get(1, 7, &query), None);
        cache.insert(1, 7, &query, 42.125);
        assert_eq!(cache.get(1, 7, &query), Some(42.125));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, entry_bytes(2));
    }

    #[test]
    fn generations_and_aggregates_never_collide() {
        let cache = AnswerCache::new(1 << 16, 1);
        let query = q(&[0.5, 0.5]);
        cache.insert(1, 1, &query, 10.0);
        cache.insert(1, 2, &query, 20.0);
        cache.insert(2, 1, &query, 30.0);
        assert_eq!(cache.get(1, 1, &query), Some(10.0));
        assert_eq!(cache.get(1, 2, &query), Some(20.0));
        assert_eq!(cache.get(2, 1, &query), Some(30.0));
        assert_eq!(cache.get(2, 2, &query), None);
    }

    #[test]
    fn refreshing_a_resident_key_is_not_an_insertion() {
        let cache = AnswerCache::new(1 << 16, 1);
        let query = q(&[0.5, 0.25]);
        cache.insert(1, 3, &query, 7.0);
        cache.insert(1, 3, &query, 7.0);
        let s = cache.stats();
        assert_eq!(s.insertions, 1, "a refresh must not count as an insertion");
        assert_eq!((s.entries, s.evictions), (1, 0));
        assert_eq!(cache.get(1, 3, &query), Some(7.0));
    }

    #[test]
    fn negative_zero_is_a_distinct_key() {
        let cache = AnswerCache::new(1 << 16, 1);
        cache.insert(0, 0, &[0.0, 1.0], 1.0);
        assert_eq!(cache.get(0, 0, &[-0.0, 1.0]), None);
        cache.insert(0, 0, &[-0.0, 1.0], 2.0);
        assert_eq!(cache.get(0, 0, &[0.0, 1.0]), Some(1.0));
        assert_eq!(cache.get(0, 0, &[-0.0, 1.0]), Some(2.0));
    }

    #[test]
    fn lru_evicts_least_recently_used_under_byte_budget() {
        // Budget for exactly three 2-d entries in one stripe.
        let cache = AnswerCache::new(3 * entry_bytes(2), 1);
        let (a, b, c, d) = (
            q(&[1.0, 0.0]),
            q(&[2.0, 0.0]),
            q(&[3.0, 0.0]),
            q(&[4.0, 0.0]),
        );
        cache.insert(0, 0, &a, 1.0);
        cache.insert(0, 0, &b, 2.0);
        cache.insert(0, 0, &c, 3.0);
        // Touch `a` so `b` is now the LRU victim.
        assert_eq!(cache.get(0, 0, &a), Some(1.0));
        cache.insert(0, 0, &d, 4.0);
        assert_eq!(cache.get(0, 0, &b), None, "LRU entry must be evicted");
        assert_eq!(cache.get(0, 0, &a), Some(1.0));
        assert_eq!(cache.get(0, 0, &c), Some(3.0));
        assert_eq!(cache.get(0, 0, &d), Some(4.0));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 3);
        assert!(s.bytes <= s.capacity_bytes);
    }

    #[test]
    fn oversized_entries_and_mismatched_dims_are_skipped_not_fatal() {
        let cache = AnswerCache::new(entry_bytes(2), 1);
        cache.insert(0, 0, &vec![0.5; 64], 1.0); // can never fit
        assert_eq!(cache.stats().entries, 0);
        cache.insert(0, 0, &[0.1, 0.2], 2.0);
        assert_eq!(cache.stats().entries, 1);
        // Different width than the stripe's stride: served uncached.
        cache.insert(0, 0, &[0.1, 0.2, 0.3], 3.0);
        assert_eq!(cache.get(0, 0, &[0.1, 0.2, 0.3]), None);
        assert_eq!(cache.get(0, 0, &[0.1, 0.2]), Some(2.0));
    }

    #[test]
    fn heavy_insert_load_stays_within_budget_and_keeps_newest() {
        let cache = AnswerCache::new(64 * entry_bytes(3), 4);
        for i in 0..10_000u32 {
            cache.insert(1, 9, &[i as f64, 0.5, 0.25], i as f64);
        }
        let s = cache.stats();
        assert!(
            s.bytes <= s.capacity_bytes,
            "{} > {}",
            s.bytes,
            s.capacity_bytes
        );
        assert!(s.evictions > 0);
        // The most recent insert in each stripe must still be resident.
        assert_eq!(cache.get(1, 9, &[9_999.0, 0.5, 0.25]), Some(9_999.0));
    }

    #[test]
    fn dedup_collapses_bitwise_identical_queries_only() {
        let queries = vec![
            q(&[0.1, 0.2]),
            q(&[0.3, 0.4]),
            q(&[0.1, 0.2]),  // dup of 0
            q(&[0.1, -0.2]), // sign differs: distinct
            q(&[0.3, 0.4]),  // dup of 1
        ];
        let hashes: Vec<u64> = queries.iter().map(|x| key_hash(0, 0, x)).collect();
        let (rep, distinct) = dedup_reps(&queries, &hashes);
        assert_eq!(rep, vec![0, 1, 0, 3, 1]);
        assert_eq!(distinct, 3);
    }

    #[test]
    fn serve_cached_fans_out_in_input_order_and_computes_once() {
        let queries = vec![
            q(&[1.0]),
            q(&[2.0]),
            q(&[1.0]),
            q(&[3.0]),
            q(&[2.0]),
            q(&[1.0]),
        ];
        let mut computed: Vec<usize> = Vec::new();
        let (out, tally) = serve_cached(None, true, &queries, |misses| {
            computed = misses.to_vec();
            misses.iter().map(|&i| queries[i][0] * 10.0).collect()
        });
        assert_eq!(
            computed,
            vec![0, 1, 3],
            "one computation per distinct query"
        );
        assert_eq!(out, vec![10.0, 20.0, 10.0, 30.0, 20.0, 10.0]);
        assert_eq!(tally.dedup_hits, 3);
        assert_eq!((tally.cache_hits, tally.cache_misses), (0, 0));
    }

    #[test]
    fn serve_cached_second_batch_is_all_hits() {
        let cache = AnswerCache::new(1 << 16, 2);
        let queries: Vec<Vec<f64>> = (0..10).map(|i| q(&[i as f64, 0.5])).collect();
        let front = Some((&cache, 3u8, 11u64));
        let (first, t1) = serve_cached(front, true, &queries, |misses| {
            misses.iter().map(|&i| queries[i][0] + 100.0).collect()
        });
        assert_eq!((t1.cache_hits, t1.cache_misses), (0, 10));
        let (second, t2) = serve_cached(front, true, &queries, |_| {
            panic!("a fully warm batch must not compute")
        });
        assert_eq!(second, first);
        assert_eq!((t2.cache_hits, t2.cache_misses), (10, 0));
        // A different generation sees none of those entries.
        let (_, t3) = serve_cached(Some((&cache, 3, 12)), true, &queries, |misses| {
            misses.iter().map(|&i| queries[i][0] + 200.0).collect()
        });
        assert_eq!((t3.cache_hits, t3.cache_misses), (0, 10));
    }

    #[test]
    fn full_stripe_admits_batch_front_keys_on_second_miss_only() {
        // Budget for exactly two 1-d entries; fill it through the front.
        let cache = AnswerCache::new(2 * entry_bytes(1), 1);
        let resident = vec![q(&[1.0]), q(&[2.0])];
        let front = Some((&cache, 0u8, 0u64));
        fn compute(qs: &[Vec<f64>]) -> impl FnOnce(&[usize]) -> Vec<f64> + '_ {
            move |misses| misses.iter().map(|&i| qs[i][0] * 3.0).collect()
        }
        serve_cached(front, true, &resident, compute(&resident));
        assert_eq!(cache.stats().entries, 2);

        // A new key's first miss through the full stripe must not evict.
        let newcomer = vec![q(&[9.0])];
        serve_cached(front, true, &newcomer, compute(&newcomer));
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 0), "first miss only marks");
        assert_eq!(cache.get(0, 0, &[1.0]), Some(3.0), "working set intact");

        // Its second miss is admitted and pays the one eviction.
        serve_cached(front, true, &newcomer, compute(&newcomer));
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        assert_eq!(cache.get(0, 0, &[9.0]), Some(27.0));
    }

    #[test]
    fn serve_cached_empty_batch() {
        let cache = AnswerCache::new(1 << 12, 1);
        let (out, tally) = serve_cached(Some((&cache, 0, 0)), true, &[], |_| unreachable!());
        assert!(out.is_empty());
        assert_eq!(tally, FrontTally::default());
    }

    #[test]
    fn eviction_pressure_never_changes_served_values() {
        // Budget so small the batch itself cannot fully fit: answers
        // must still be exactly the computed values.
        let cache = AnswerCache::new(2 * entry_bytes(1), 1);
        let queries: Vec<Vec<f64>> = (0..50).map(|i| q(&[(i % 7) as f64])).collect();
        for round in 0..4 {
            let (out, _) = serve_cached(Some((&cache, 0, round)), true, &queries, |misses| {
                misses.iter().map(|&i| queries[i][0] * 3.0).collect()
            });
            for (o, query) in out.iter().zip(&queries) {
                assert_eq!(*o, query[0] * 3.0);
            }
        }
        assert!(cache.stats().bytes <= cache.capacity_bytes());
    }
}
