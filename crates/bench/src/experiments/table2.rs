//! Table 2: median visit duration for a *general rectangle* on VS.
//!
//! The query instance is `q = (p, p′, φ)`: two opposite rectangle
//! vertices plus the rectangle's angle with the x-axis. Neither DeepDB
//! nor DBEst can express this predicate, and VerdictDB's implementation
//! lacks the MEDIAN aggregate — so, as in the paper, only NeuroSketch and
//! TREE-AGG produce numbers.

use crate::common::{eval_engine, print_rows, time_queries, EngineRow, ExperimentContext};
use baselines::dbest::{DbEstConfig, DbEstEnsemble};
use baselines::deepdb::{Spn, SpnConfig};
use baselines::tree_agg::TreeAgg;
use baselines::verdict::StratifiedSampler;
use baselines::AqpEngine;
use datagen::PaperDataset;
use neurosketch::NeuroSketch;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::predicate::RotatedRect;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate rotated-rectangle query instances over normalized VS space.
pub fn rect_queries(count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let px = rng.random_range(0.1..0.7);
            let py = rng.random_range(0.1..0.7);
            let dx = rng.random_range(0.08..0.35);
            let dy = rng.random_range(0.08..0.35);
            let phi = rng.random_range(0.0..std::f64::consts::FRAC_PI_2);
            // p' = p + R(phi) (dx, dy)
            let qx = px + dx * phi.cos() - dy * phi.sin();
            let qy = py + dx * phi.sin() + dy * phi.cos();
            vec![px, py, qx, qy, phi]
        })
        .collect()
}

/// Run Table 2.
pub fn run(ctx: &ExperimentContext) -> Vec<EngineRow> {
    let (data, measure) = ctx.dataset(PaperDataset::Vs);
    let engine = QueryEngine::new(&data, measure);
    let pred = RotatedRect::new(0, 1, data.dims()).expect("lat/lon exist");
    let agg = Aggregate::Median;

    let all = rect_queries(ctx.train_queries() + ctx.test_queries(), ctx.seed);
    let (train, test) = all.split_at(ctx.train_queries());
    let labels = engine.label_batch(&pred, agg, train, 4);
    let truth = engine.label_batch(&pred, agg, test, 4);

    let (sketch, _) =
        NeuroSketch::build_from_labeled(train, &labels, &ctx.ns_config()).expect("sketch build");
    let sample_k = (data.rows() / 10).max(100);
    let tree_agg = TreeAgg::build(&data, measure, sample_k, ctx.seed);
    let verdict = StratifiedSampler::build(&data, measure, sample_k, 32, ctx.seed);
    let deepdb = Spn::build(
        &data,
        measure,
        &SpnConfig {
            seed: ctx.seed,
            ..SpnConfig::default()
        },
    );
    let dbest = DbEstEnsemble::build(
        &data,
        measure,
        &DbEstConfig {
            seed: ctx.seed,
            reg_samples: 500,
            ..DbEstConfig::default()
        },
    );

    let mut rows = Vec::new();
    let mut ws = nn::mlp::Workspace::default();
    let test_v: Vec<Vec<f64>> = test.to_vec();
    let (preds, us) = time_queries(&test_v, |q| sketch.answer_with(&mut ws, q));
    rows.push(EngineRow {
        engine: "NeuroSketch",
        nmae: normalized_mae(&truth, &preds),
        query_us: us,
        storage_kib: sketch.storage_bytes() as f64 / 1024.0,
        support: 1.0,
    });
    rows.push(eval_engine(
        &tree_agg,
        "TREE-AGG",
        &pred,
        agg,
        &test_v,
        &truth,
        tree_agg.storage_bytes(),
    ));
    rows.push(eval_engine(
        &verdict,
        "VerdictDB",
        &pred,
        agg,
        &test_v,
        &truth,
        verdict.storage_bytes(),
    ));
    rows.push(eval_engine(
        &deepdb,
        "DeepDB",
        &pred,
        agg,
        &test_v,
        &truth,
        deepdb.storage_bytes(),
    ));
    rows.push(eval_engine(
        &dbest,
        "DBEst",
        &pred,
        agg,
        &test_v,
        &truth,
        dbest.storage_bytes(),
    ));
    rows
}

/// Print the table.
pub fn print(rows: &[EngineRow]) {
    print_rows(
        "Table 2: MEDIAN visit duration, general rectangle (VS)",
        rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_neurosketch_and_tree_agg_answer() {
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        let by = |n: &str| rows.iter().find(|r| r.engine == n).unwrap();
        assert_eq!(by("NeuroSketch").support, 1.0);
        assert_eq!(by("TREE-AGG").support, 1.0);
        assert_eq!(by("VerdictDB").support, 0.0);
        assert_eq!(by("DeepDB").support, 0.0);
        assert_eq!(by("DBEst").support, 0.0);
        assert!(by("NeuroSketch").nmae.is_finite());
    }

    #[test]
    fn rect_queries_are_valid_instances() {
        let qs = rect_queries(50, 1);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert_eq!(q.len(), 5);
            assert!(q[4] >= 0.0 && q[4] < std::f64::consts::FRAC_PI_2);
        }
    }
}
