//! DQD bound evaluators (Theorems 3.1 / 3.4 / 3.5, Lemma 3.6).
//!
//! These functions turn the paper's bounds into numbers a query optimizer
//! could act on (Sec. 4.3 "NeuroSketch and DQD in Practice"): given data
//! size, dimensionality and an LDQ estimate, how large must a network be
//! for a target approximation error, and how confident can we be that the
//! sampling error is small?
//!
//! Constants follow the proofs: the approximation bound uses `𝜘 = 3`
//! (1-norm, Eq. 7) or `𝜘 = 37` (∞-norm, Lemma A.3b); the sampling bound
//! uses the explicit VC constants of Theorem A.11
//! (`8e^d (32e/ε)^d e^{−ε²n/32}` with `vc = 2d`).

/// Norm under which the approximation guarantee holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorNorm {
    /// 1-norm bound, any dimension (Theorem 3.4a, `𝜘 = 3`).
    L1,
    /// ∞-norm bound, requires `d ≤ 3` (Theorem 3.4b, `𝜘 = 37`).
    LInf,
}

/// Grid resolution `t` needed for approximation error `eps1` on a
/// `rho`-Lipschitz function in `d` dimensions: `t = ⌈𝜘 ρ d / ε₁⌉`.
///
/// # Panics
/// Panics on nonpositive `eps1`/`rho` or `d == 0`, or `LInf` with `d > 3`.
pub fn grid_resolution(rho: f64, d: usize, eps1: f64, norm: ErrorNorm) -> usize {
    assert!(
        rho > 0.0 && eps1 > 0.0 && d > 0,
        "rho, eps1, d must be positive"
    );
    if norm == ErrorNorm::LInf {
        assert!(d <= 3, "the ∞-norm bound of Theorem 3.4 requires d <= 3");
    }
    let kappa = match norm {
        ErrorNorm::L1 => 3.0,
        ErrorNorm::LInf => 37.0,
    };
    (kappa * rho * d as f64 / eps1).ceil().max(1.0) as usize
}

/// Space/time complexity of the constructed network for approximation
/// error `eps1` (Theorem 3.4): `Õ(d·k)` with `k = (t+1)^d` units — we
/// report the exact unit count times `d`, the paper's `d(𝜘ρdε₁⁻¹+1)^d`
/// inside the Õ. Saturates at `usize::MAX` for astronomical sizes.
pub fn approx_complexity(rho: f64, d: usize, eps1: f64, norm: ErrorNorm) -> usize {
    let t = grid_resolution(rho, d, eps1, norm) as f64;
    let k = (t + 1.0).powi(d as i32);
    let total = d as f64 * k;
    if total >= usize::MAX as f64 {
        usize::MAX
    } else {
        total as usize
    }
}

/// Theorem 3.5 / A.11 tail probability: an upper bound on
/// `P[ sup_q |f_χ(q) − f_D(q)| / n > eps2 ]` for COUNT/SUM query functions
/// over `n` i.i.d. points in `d` dimensions, using the explicit VC-theorem
/// constants with `vc(ℋ) = 2d`. Clamped to `[0, 1]`.
pub fn sampling_confidence(d: usize, n: usize, eps2: f64) -> f64 {
    assert!(eps2 > 0.0 && d > 0, "eps2 and d must be positive");
    let vc = 2.0 * d as f64;
    let e = std::f64::consts::E;
    // 8 e^{vc} (32 e / ε)^{vc} exp(−ε² n / 32), in log space for stability.
    let log_p = (8.0f64).ln() + vc * (1.0 + (32.0 * e / eps2).ln()) - eps2 * eps2 * n as f64 / 32.0;
    log_p.exp().min(1.0)
}

/// Smallest `eps2` with sampling confidence failure probability at most
/// `delta`, found by bisection. Returns `None` if even `eps2 = 1` cannot
/// reach `delta` (data too small).
pub fn eps2_for_confidence(d: usize, n: usize, delta: f64) -> Option<f64> {
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    if sampling_confidence(d, n, 1.0) > delta {
        return None;
    }
    let (mut lo, mut hi) = (1e-9, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sampling_confidence(d, n, mid) > delta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Full DQD error bound (Theorem 3.1): for a network sized for
/// approximation error `eps1`, total normalized 1-norm error `ε₁ + ε₂`
/// holds except with the returned probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DqdBound {
    /// Approximation error component (network capacity).
    pub eps1: f64,
    /// Sampling error component (data size).
    pub eps2: f64,
    /// Network complexity `d·k` sufficient for `eps1`.
    pub complexity: usize,
    /// Failure probability of the `eps1 + eps2` guarantee.
    pub failure_probability: f64,
}

/// Evaluate the DQD bound for given LDQ `rho`, query-function dim `d`,
/// data size `n`, and the two error parameters.
pub fn dqd_bound(rho: f64, d: usize, n: usize, eps1: f64, eps2: f64) -> DqdBound {
    DqdBound {
        eps1,
        eps2,
        complexity: approx_complexity(rho, d, eps1, ErrorNorm::L1),
        failure_probability: sampling_confidence(d, n, eps2),
    }
}

/// Lemma 3.6 tail bound for AVG query functions restricted to queries with
/// `f_χ^C(q) ≥ xi·n` (i.e. match probability at least `xi`): upper bound on
/// `P[ sup err(q) ≥ eps ]` with `err` the relative AVG error of the lemma.
pub fn avg_sampling_confidence(d: usize, n: usize, xi: f64, eps: f64) -> f64 {
    assert!(xi > 0.0 && eps > 0.0, "xi and eps must be positive");
    let e = std::f64::consts::E;
    let vc = 2.0 * d as f64;
    let scaled = xi * eps / (1.0 + eps);
    // 16 e^{vc} (32e/scaled)^{vc} exp(−scaled² n / 32)
    let log_p =
        (16.0f64).ln() + vc * (1.0 + (32.0 * e / scaled).ln()) - scaled * scaled * n as f64 / 32.0;
    log_p.exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_resolution_scales_with_rho_and_inverse_eps() {
        let t1 = grid_resolution(1.0, 2, 0.1, ErrorNorm::L1);
        let t2 = grid_resolution(2.0, 2, 0.1, ErrorNorm::L1);
        let t3 = grid_resolution(1.0, 2, 0.05, ErrorNorm::L1);
        assert_eq!(t1, 60); // 3*1*2/0.1
        assert_eq!(t2, 120);
        assert_eq!(t3, 120);
    }

    #[test]
    fn linf_needs_low_dim() {
        let t = grid_resolution(1.0, 3, 0.5, ErrorNorm::LInf);
        assert_eq!(t, (37.0f64 * 3.0 / 0.5).ceil() as usize);
    }

    #[test]
    #[should_panic(expected = "requires d <= 3")]
    fn linf_rejects_high_dim() {
        let _ = grid_resolution(1.0, 4, 0.5, ErrorNorm::LInf);
    }

    #[test]
    fn complexity_grows_exponentially_in_d() {
        let c2 = approx_complexity(1.0, 2, 0.5, ErrorNorm::L1);
        let c3 = approx_complexity(1.0, 3, 0.5, ErrorNorm::L1);
        assert!(c3 > 10 * c2, "c2 {c2} c3 {c3}");
    }

    #[test]
    fn sampling_confidence_improves_with_n() {
        let p_small = sampling_confidence(2, 1_000, 0.05);
        let p_big = sampling_confidence(2, 1_000_000, 0.05);
        assert!(p_big < p_small);
        assert!(p_big < 1e-6, "p_big {p_big}");
    }

    #[test]
    fn sampling_confidence_clamped_to_one() {
        assert_eq!(sampling_confidence(5, 10, 0.01), 1.0);
    }

    #[test]
    fn eps2_decreases_with_n() {
        // "Faster on larger databases": fixed confidence, more data ⇒
        // smaller eps2.
        let e1 = eps2_for_confidence(1, 100_000, 0.05).unwrap();
        let e2 = eps2_for_confidence(1, 10_000_000, 0.05).unwrap();
        assert!(e2 < e1, "{e2} !< {e1}");
        assert!(eps2_for_confidence(1, 10, 0.05).is_none());
    }

    #[test]
    fn dqd_bound_combines_both_terms() {
        let b = dqd_bound(1.0, 2, 1_000_000, 0.05, 0.05);
        assert_eq!(b.eps1 + b.eps2, 0.1);
        assert!(b.failure_probability < 1.0);
        assert!(b.complexity > 0);
    }

    #[test]
    fn avg_bound_improves_with_larger_ranges() {
        // Lemma 3.6: larger xi (larger ranges) ⇒ tighter bound. The VC
        // constants are loose, so n must be large before the bound is
        // informative (< 1).
        let n = 1_000_000_000;
        let p_small_range = avg_sampling_confidence(2, n, 0.05, 0.1);
        let p_large_range = avg_sampling_confidence(2, n, 0.2, 0.1);
        assert!(p_small_range < 1.0, "p_small {p_small_range}");
        assert!(p_large_range < p_small_range);
    }

    #[test]
    fn avg_bound_improves_with_n() {
        // n chosen so neither probability underflows f64.
        let p1 = avg_sampling_confidence(2, 10_000_000, 0.2, 0.1);
        let p2 = avg_sampling_confidence(2, 50_000_000, 0.2, 0.1);
        assert!(p1 < 1.0, "p1 {p1}");
        assert!(p2 < p1);
    }
}
