//! Replicated shard serving over a simulated cluster, with a
//! deterministic fault-injection harness.
//!
//! [`crate::shard`] answers a batch by scattering to K shard sketches
//! on one box. This module extends that to a *cluster*: every shard
//! group holds N [`Replica`]s behind a pluggable [`RoutePolicy`], a
//! rolling upgrade walks replicas generation-by-generation using the
//! NSKM generation counter from [`crate::persist`], and a round-robin
//! plan can be [rebalanced](Cluster::rebalance) K → K·f *row-stably* —
//! answers stay bitwise identical because each physical model is still
//! evaluated exactly once per group and groups merge in the same order.
//!
//! Correctness under failure is carried by [`FaultPlan`]: a seeded,
//! serializable schedule of replica kills, stale generations, torn
//! manifests, and checksum-corrupt artifacts. Every fault produces a
//! typed outcome — a degraded [`ClusterBatchReport`] (quorum answer
//! with a staleness flag) or a [`ClusterError`] — never a panic, and
//! never a silent blend of generations: one batch is served entirely
//! from one generation.
//!
//! Determinism contract: with the same cluster state, fault plan, and
//! batch sequence, answers **and the event log** are bitwise identical
//! at any thread count. All routing and fault decisions are made on
//! the coordinator before the parallel scatter; workers only run
//! pre-assigned `(group, replica)` jobs.

use crate::cache::{aggregate_tag, serve_cached, AnswerCache, CachePolicy, CacheStats};
use crate::deploy::{DeployKind, DeployStats, Deployment, DeploymentInfo};
use crate::persist::{self, PersistError};
use crate::shard::{
    build_shard_sketch, finish_guarded, splitmix64, ShardLayout, ShardPlan, ShardSketch,
    ShardedSketch,
};
use crate::sketch::{BatchScratch, NeuroSketchConfig};
use crate::SketchError;
use datagen::Dataset;
use query::aggregate::{Aggregate, Moments};
use query::predicate::PredicateFn;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// How the coordinator picks which healthy replica of a group serves a
/// batch. All policies are deterministic functions of cluster state, so
/// a replayed batch sequence routes identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Cycle through eligible replicas per group; each group keeps its
    /// own cursor, advanced once per served batch.
    RoundRobin,
    /// Pick the eligible replica that has served the fewest queries
    /// (ties broken by lowest replica index).
    LeastLoaded,
    /// Prefer the most recently upgraded eligible replica (highest
    /// upgrade sequence number, ties broken by lowest replica index) —
    /// drains traffic onto fresh artifacts during a rolling upgrade.
    GenerationAware,
}

/// Cluster serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterOptions {
    /// Worker threads for the cross-group scatter (≥ 1).
    pub threads: usize,
    /// Per-GEMM sub-batch cap, as in [`crate::serve::ServeOptions`].
    pub max_shard: usize,
    /// Fraction of shard groups that must be covered by a healthy
    /// replica at a single generation for a batch to be answered, in
    /// `(0, 1]`. `1.0` demands full coverage; lower values return a
    /// partial (quorum) answer with the uncovered groups contributing
    /// nothing to the merge.
    pub quorum: f64,
    /// Build a pre-transposed block-padded serving layout
    /// ([`ShardLayout`]) per replica and scatter through the dense
    /// GEMM path, as [`crate::serve::ServeOptions::layout`] does for
    /// the single-node server. Answers are bitwise identical either
    /// way; this trades memory (one padded parameter copy per replica)
    /// for batch throughput.
    pub layout: bool,
    /// Answer cache + in-batch dedup front ([`crate::cache`]) for
    /// [`Cluster::answer_batch`]. Keys carry the generation each batch
    /// actually served (the routing decision's target), so a rolling
    /// upgrade yields zero stale hits by construction and a batch that
    /// degrades to an older generation looks that generation's entries
    /// up, never the newest's. Routing, fault injection and quorum
    /// accounting run for every batch whether or not it computes. Off
    /// by default.
    pub cache: CachePolicy,
}

impl Default for ClusterOptions {
    fn default() -> ClusterOptions {
        ClusterOptions {
            threads: 4,
            max_shard: 1024,
            quorum: 1.0,
            layout: true,
            cache: CachePolicy::OFF,
        }
    }
}

/// A replica's serving state. Only `Healthy` replicas are routable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// In rotation.
    Healthy,
    /// Killed by a [`Fault::Kill`] (process loss); needs
    /// [`Cluster::repair_replica`].
    Killed,
    /// Its artifact failed a checksum during upgrade — the bytes on
    /// its disk are untrustworthy.
    CorruptArtifact,
    /// Its artifact could not be loaded (missing file, decode error).
    LoadFailed,
}

/// One copy of a shard group's sketch, with the bookkeeping the router
/// and the rolling upgrade read.
#[derive(Debug, Clone)]
pub struct Replica {
    sketch: ShardSketch,
    /// Pre-transposed serving layout for `sketch`, rebuilt on every
    /// artifact swap; `None` when [`ClusterOptions::layout`] is off or
    /// the slot holds no loadable sketch.
    layout: Option<ShardLayout>,
    generation: u64,
    health: ReplicaHealth,
    pinned: bool,
    served: u64,
    upgrade_seq: u64,
}

impl Replica {
    /// NSKM generation of the artifact this replica serves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current health.
    pub fn health(&self) -> ReplicaHealth {
        self.health
    }

    /// Whether a fault pinned this replica to its generation (it will
    /// be skipped by rolling upgrades until repaired).
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// Total queries this replica has served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A shard group: one slice of the row space (one or more logical
/// shards of the current plan) and its replica set.
#[derive(Debug, Clone)]
pub struct ShardGroup {
    /// Logical shard ids of the *current* plan this group answers for.
    /// Starts as `[i]`; after a K→K·f rebalance a still-coarse group
    /// covers `f` logical ids until materialized.
    logical: Vec<usize>,
    /// Index into the NSKM manifest's shard list backing this group's
    /// artifacts, if the group is persistence-backed. `None` after
    /// [`Cluster::materialize_group`] splits a group in memory.
    physical: Option<usize>,
    replicas: Vec<Replica>,
    rr_cursor: usize,
}

impl ShardGroup {
    /// Logical shard ids (ascending) this group covers.
    pub fn logical(&self) -> &[usize] {
        &self.logical
    }

    /// Manifest shard index backing this group, if any.
    pub fn physical(&self) -> Option<usize> {
        self.physical
    }

    /// The replica set.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }
}

/// One injected fault. `group`/`replica` address a replica slot;
/// faults addressing slots that do not exist are ignored (fired but
/// harmless), so a plan generated for one topology replays safely on
/// another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Kill a replica at the start of batch `batch` (0-based serve
    /// counter) — the router must fail over mid-sequence.
    Kill {
        /// Batch counter at (or after) which the kill fires.
        batch: u64,
        /// Target group index.
        group: usize,
        /// Target replica index within the group.
        replica: usize,
    },
    /// During a rolling upgrade, this replica's refresh silently never
    /// happens: it keeps serving its old generation (pinned) while
    /// peers advance — the "stale generation" production failure.
    StaleGeneration {
        /// Target group index.
        group: usize,
        /// Target replica index within the group.
        replica: usize,
    },
    /// During a rolling upgrade, this replica's manifest rename never
    /// lands (torn at the atomic-rename boundary): it stays loadable at
    /// its old generation, pinned until repaired.
    TornManifest {
        /// Target group index.
        group: usize,
        /// Target replica index within the group.
        replica: usize,
    },
    /// During a rolling upgrade, this replica's new artifact fails its
    /// checksum: the replica is taken out of rotation
    /// ([`ReplicaHealth::CorruptArtifact`]).
    CorruptArtifact {
        /// Target group index.
        group: usize,
        /// Target replica index within the group.
        replica: usize,
    },
}

/// A seeded, serializable, replayable schedule of injected faults.
///
/// Serialize a plan into a regression test and replay it later: the
/// same plan against the same cluster state produces the same typed
/// failure sequence — same events, same answers — at any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed this plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The fault schedule. Kills fire by batch counter; upgrade faults
    /// fire when the rolling upgrade reaches their target replica.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Derive `count` faults from `seed` over a `groups × replicas`
    /// topology and a horizon of `batches` serve batches. Pure function
    /// of its arguments (splitmix64 counter stream), so two calls with
    /// equal inputs yield equal plans.
    pub fn generate(
        seed: u64,
        groups: usize,
        replicas: usize,
        batches: u64,
        count: usize,
    ) -> FaultPlan {
        let mut ctr = 0u64;
        let mut next = move || {
            ctr += 1;
            splitmix64(seed.wrapping_add(ctr))
        };
        let faults = (0..count)
            .map(|_| {
                let group = (next() % groups.max(1) as u64) as usize;
                let replica = (next() % replicas.max(1) as u64) as usize;
                match next() % 4 {
                    0 => Fault::Kill {
                        batch: next() % batches.max(1),
                        group,
                        replica,
                    },
                    1 => Fault::StaleGeneration { group, replica },
                    2 => Fault::TornManifest { group, replica },
                    _ => Fault::CorruptArtifact { group, replica },
                }
            })
            .collect();
        FaultPlan { seed, faults }
    }
}

/// Everything observable that happened inside the cluster — the
/// harness's ground truth. Events are appended in deterministic order;
/// [`Cluster::take_events`] drains them for assertions.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterEvent {
    /// A [`Fault::Kill`] fired.
    ReplicaKilled {
        /// Batch counter at which the kill took effect.
        batch: u64,
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
    },
    /// The routed replica was unhealthy; another replica took the
    /// batch.
    Failover {
        /// Batch counter.
        batch: u64,
        /// Group index.
        group: usize,
        /// Originally chosen replica.
        from: usize,
        /// Replica that served instead.
        to: usize,
    },
    /// No healthy replica at the serving generation covered this group
    /// for this batch (it contributed nothing to the merge).
    GroupUncovered {
        /// Batch counter.
        batch: u64,
        /// Group index.
        group: usize,
    },
    /// The batch was served from an older generation than the newest
    /// any healthy replica holds.
    ServedStale {
        /// Batch counter.
        batch: u64,
        /// Generation actually served.
        served: u64,
        /// Newest generation present on any healthy replica.
        latest: u64,
    },
    /// A rolling-upgrade step swapped a replica's artifact.
    UpgradeApplied {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// Generation before the swap.
        from: u64,
        /// Generation after the swap.
        to: u64,
    },
    /// A [`Fault::StaleGeneration`] pinned a replica at its old
    /// generation instead of upgrading it.
    UpgradePinnedStale {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// Generation it is pinned at.
        generation: u64,
    },
    /// A [`Fault::TornManifest`] tore a replica's upgrade at the
    /// rename boundary; it stays at its old generation, pinned.
    UpgradeTorn {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// Generation it remains loadable at.
        generation: u64,
    },
    /// A [`Fault::CorruptArtifact`] failed a replica's upgrade
    /// checksum; the replica left rotation.
    UpgradeCorrupt {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
    },
    /// A replica's artifact could not be loaded (at cluster load or
    /// during an upgrade step).
    ReplicaLoadFailed {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// The typed persistence error, rendered.
        error: String,
    },
    /// A whole replica column's manifest was rejected at
    /// [`Cluster::load`] (unreadable, torn, or disagreeing on
    /// plan/aggregate); every slot in the column is down.
    ManifestRejected {
        /// Replica column index.
        replica: usize,
        /// The typed error, rendered.
        error: String,
    },
    /// [`Cluster::repair_replica`] restored a replica to rotation.
    ReplicaRepaired {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// Generation it now serves.
        generation: u64,
    },
    /// The plan was refined in place; groups now cover multiple
    /// logical shards until materialized.
    Rebalanced {
        /// Refinement factor `f` (K → K·f).
        factor: usize,
        /// New logical shard count.
        shards: usize,
    },
    /// A coarse group was split into per-logical-shard groups with
    /// freshly built (bitwise-reproducible) models.
    GroupMaterialized {
        /// Index the coarse group had before the split.
        group: usize,
        /// Logical shard ids that became their own groups.
        shards: Vec<usize>,
    },
}

/// Typed cluster failure. Serving degrades through
/// [`ClusterBatchReport`] first; this error means the batch (or
/// control-plane call) could not produce a sound answer at all.
#[derive(Debug)]
pub enum ClusterError {
    /// No single generation had enough healthy coverage to meet the
    /// configured quorum.
    QuorumLost {
        /// Groups the best candidate generation covered.
        covered: usize,
        /// Groups the quorum required.
        needed: usize,
        /// Total shard groups.
        groups: usize,
    },
    /// The requested topology or control-plane operation is invalid
    /// (zero replicas, bad quorum, aggregate mismatch, …).
    BadTopology(String),
    /// A persistence operation failed.
    Persist(PersistError),
    /// A sketch-layer operation failed.
    Sketch(SketchError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::QuorumLost {
                covered,
                needed,
                groups,
            } => write!(
                f,
                "quorum lost: best generation covers {covered} of {groups} shard groups, \
                 quorum requires {needed}"
            ),
            ClusterError::BadTopology(msg) => write!(f, "bad cluster topology: {msg}"),
            ClusterError::Persist(e) => write!(f, "cluster persistence: {e}"),
            ClusterError::Sketch(e) => write!(f, "cluster sketch: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<PersistError> for ClusterError {
    fn from(e: PersistError) -> ClusterError {
        ClusterError::Persist(e)
    }
}

impl From<SketchError> for ClusterError {
    fn from(e: SketchError) -> ClusterError {
        ClusterError::Sketch(e)
    }
}

/// What one served batch looked like from the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBatchReport {
    /// Queries in the batch.
    pub queries: usize,
    /// Generation every contributing replica served (never blended).
    pub generation: u64,
    /// Newest generation present on any healthy replica.
    pub latest: u64,
    /// `generation < latest`: the staleness flag.
    pub stale: bool,
    /// Shard groups that contributed to the merge.
    pub covered: usize,
    /// Total shard groups.
    pub groups: usize,
    /// Replicas that served only because the routed replica was down.
    pub failovers: usize,
    /// Replica chosen per group (`None` = uncovered this batch).
    pub chosen: Vec<Option<usize>>,
    /// Queries answered from the answer cache
    /// ([`ClusterOptions::cache`]) at this batch's serving generation.
    pub cache_hits: usize,
    /// Cache lookups that fell through to the scatter (0 with caching
    /// off).
    pub cache_misses: usize,
    /// Queries collapsed onto a bitwise-identical query in the same
    /// batch.
    pub dedup_hits: usize,
}

/// Every decision [`Cluster::route_batch`] made for one batch, enough
/// to scatter queries later (or not at all, on a full cache hit) and
/// to assemble the batch report.
struct RouteDecision {
    target: u64,
    latest: u64,
    stale: bool,
    chosen: Vec<Option<usize>>,
    covered: usize,
    failovers: usize,
}

impl RouteDecision {
    fn into_report(
        self,
        queries: usize,
        groups: usize,
        cache_hits: usize,
        cache_misses: usize,
        dedup_hits: usize,
    ) -> ClusterBatchReport {
        ClusterBatchReport {
            queries,
            generation: self.target,
            latest: self.latest,
            stale: self.stale,
            covered: self.covered,
            groups,
            failovers: self.failovers,
            chosen: self.chosen,
            cache_hits,
            cache_misses,
            dedup_hits,
        }
    }
}

/// Outcome of one [`Cluster::rolling_upgrade_step`].
#[derive(Debug, Clone, PartialEq)]
pub enum UpgradeStep {
    /// A replica was swapped to the manifest's generation.
    Upgraded {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// Generation before.
        from: u64,
        /// Generation after.
        to: u64,
    },
    /// A [`Fault::StaleGeneration`] pinned the replica instead.
    PinnedStale {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// Generation it is pinned at.
        generation: u64,
    },
    /// A [`Fault::TornManifest`] tore the upgrade; the replica stays
    /// at its old generation, pinned.
    Torn {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// Generation it remains at.
        generation: u64,
    },
    /// A [`Fault::CorruptArtifact`] corrupted the new artifact; the
    /// replica left rotation.
    Corrupt {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
    },
    /// Loading the new artifact failed with a typed persistence error.
    LoadFailed {
        /// Group index.
        group: usize,
        /// Replica index.
        replica: usize,
        /// The typed error, rendered.
        error: String,
    },
    /// Every upgradeable replica is at the manifest's generation.
    Done {
        /// The generation the cluster converged to.
        generation: u64,
    },
}

/// A replicated scatter/gather deployment over shard groups, plus the
/// control plane (rolling upgrades, repair, rebalance) and the fault
/// harness. See the [module docs](crate::cluster) for the determinism
/// contract.
pub struct Cluster {
    plan: ShardPlan,
    aggregate: Aggregate,
    groups: Vec<ShardGroup>,
    policy: RoutePolicy,
    opts: ClusterOptions,
    batches: u64,
    upgrade_seq: u64,
    faults: Vec<Fault>,
    fired: Vec<bool>,
    events: Vec<ClusterEvent>,
    /// Built at construction when `opts.cache` retains answers. Shared
    /// (`Arc`) so the serve front can hold it while the coordinator
    /// mutates routing state.
    cache: Option<Arc<AnswerCache>>,
}

fn validate_opts(opts: &ClusterOptions) -> Result<(), ClusterError> {
    if !(opts.quorum > 0.0 && opts.quorum <= 1.0) {
        return Err(ClusterError::BadTopology(format!(
            "quorum must be in (0, 1], got {}",
            opts.quorum
        )));
    }
    Ok(())
}

impl Cluster {
    /// Stand up a cluster from an in-memory sharded sketch by cloning
    /// each shard `replicas` times, all at `generation`.
    pub fn new(
        sketch: &ShardedSketch,
        replicas: usize,
        generation: u64,
        policy: RoutePolicy,
        opts: ClusterOptions,
    ) -> Result<Cluster, ClusterError> {
        if replicas == 0 {
            return Err(ClusterError::BadTopology(
                "a cluster needs at least one replica per shard group".into(),
            ));
        }
        validate_opts(&opts)?;
        let groups = sketch
            .shards()
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let layout = opts.layout.then(|| shard.serving_layout());
                ShardGroup {
                    logical: vec![i],
                    physical: Some(i),
                    replicas: (0..replicas)
                        .map(|_| Replica {
                            sketch: shard.clone(),
                            layout: layout.clone(),
                            generation,
                            health: ReplicaHealth::Healthy,
                            pinned: false,
                            served: 0,
                            upgrade_seq: 0,
                        })
                        .collect(),
                    rr_cursor: 0,
                }
            })
            .collect();
        Ok(Cluster {
            plan: sketch.plan(),
            aggregate: sketch.aggregate(),
            groups,
            policy,
            cache: Cluster::build_cache(&opts),
            opts,
            batches: 0,
            upgrade_seq: 0,
            faults: Vec::new(),
            fired: Vec::new(),
            events: Vec::new(),
        })
    }

    fn build_cache(opts: &ClusterOptions) -> Option<Arc<AnswerCache>> {
        opts.cache.caching().then(|| {
            Arc::new(AnswerCache::new(
                opts.cache.capacity_bytes,
                opts.cache.stripes,
            ))
        })
    }

    /// Counters and occupancy of the answer cache, when
    /// [`ClusterOptions::cache`] retains answers.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_deref().map(AnswerCache::stats)
    }

    /// Stand up a cluster from one NSKM manifest per replica column —
    /// the "each replica has its own disk" topology. Columns whose
    /// manifest is unreadable or disagrees with the first readable one
    /// on plan/aggregate are rejected (every slot down, a
    /// [`ClusterEvent::ManifestRejected`] logged); individual shard
    /// loads that fail leave just that slot down. Errors only if no
    /// manifest is readable or no replica at all is healthy.
    pub fn load<P: AsRef<Path>>(
        replica_manifests: &[P],
        policy: RoutePolicy,
        opts: ClusterOptions,
    ) -> Result<Cluster, ClusterError> {
        validate_opts(&opts)?;
        if replica_manifests.is_empty() {
            return Err(ClusterError::BadTopology(
                "a cluster needs at least one replica manifest".into(),
            ));
        }
        let mut events = Vec::new();
        let decoded: Vec<Result<persist::ShardManifest, PersistError>> = replica_manifests
            .iter()
            .map(|p| {
                let raw = std::fs::read(p.as_ref()).map_err(|e| PersistError::Io(e.to_string()))?;
                persist::decode_manifest(bytes::Bytes::from(raw))
            })
            .collect();
        let base = match decoded.iter().find_map(|d| d.as_ref().ok()) {
            Some(m) => m.clone(),
            None => {
                // No readable manifest at all: surface the first error.
                let first = decoded.into_iter().next().expect("non-empty").unwrap_err();
                return Err(ClusterError::Persist(first));
            }
        };
        let mut usable: Vec<bool> = Vec::with_capacity(decoded.len());
        for (r, d) in decoded.iter().enumerate() {
            match d {
                Ok(m) if m.plan == base.plan && m.aggregate == base.aggregate => usable.push(true),
                Ok(m) => {
                    events.push(ClusterEvent::ManifestRejected {
                        replica: r,
                        error: format!(
                            "replica manifest disagrees with the cluster: plan {:?} vs {:?}, \
                             aggregate {} vs {}",
                            m.plan,
                            base.plan,
                            m.aggregate.name(),
                            base.aggregate.name()
                        ),
                    });
                    usable.push(false);
                }
                Err(e) => {
                    events.push(ClusterEvent::ManifestRejected {
                        replica: r,
                        error: e.to_string(),
                    });
                    usable.push(false);
                }
            }
        }
        let shards = base.plan.shards();
        let mut healthy_total = 0usize;
        let groups: Vec<ShardGroup> = (0..shards)
            .map(|g| {
                let replicas = replica_manifests
                    .iter()
                    .enumerate()
                    .map(|(r, path)| {
                        if !usable[r] {
                            return Replica {
                                sketch: ShardSketch::from_models([None, None, None]),
                                layout: None,
                                generation: 0,
                                health: ReplicaHealth::LoadFailed,
                                pinned: false,
                                served: 0,
                                upgrade_seq: 0,
                            };
                        }
                        match persist::load_shard(path.as_ref(), g) {
                            Ok((sketch, manifest)) => {
                                healthy_total += 1;
                                let layout = opts.layout.then(|| sketch.serving_layout());
                                Replica {
                                    sketch,
                                    layout,
                                    generation: manifest.generation,
                                    health: ReplicaHealth::Healthy,
                                    pinned: false,
                                    served: 0,
                                    upgrade_seq: 0,
                                }
                            }
                            Err(e) => {
                                events.push(ClusterEvent::ReplicaLoadFailed {
                                    group: g,
                                    replica: r,
                                    error: e.to_string(),
                                });
                                Replica {
                                    sketch: ShardSketch::from_models([None, None, None]),
                                    layout: None,
                                    generation: 0,
                                    health: ReplicaHealth::LoadFailed,
                                    pinned: false,
                                    served: 0,
                                    upgrade_seq: 0,
                                }
                            }
                        }
                    })
                    .collect();
                ShardGroup {
                    logical: vec![g],
                    physical: Some(g),
                    replicas,
                    rr_cursor: 0,
                }
            })
            .collect();
        if healthy_total == 0 {
            return Err(ClusterError::BadTopology(
                "no replica of any shard group loaded healthy".into(),
            ));
        }
        Ok(Cluster {
            plan: base.plan,
            aggregate: base.aggregate,
            groups,
            policy,
            cache: Cluster::build_cache(&opts),
            opts,
            batches: 0,
            upgrade_seq: 0,
            faults: Vec::new(),
            fired: Vec::new(),
            events,
        })
    }

    /// Arm a fault plan. Each fault fires at most once; kills fire by
    /// batch counter, upgrade faults when the rolling upgrade reaches
    /// their target.
    pub fn with_faults(mut self, plan: FaultPlan) -> Cluster {
        self.fired = vec![false; plan.faults.len()];
        self.faults = plan.faults;
        self
    }

    /// The current (possibly refined) shard plan.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// The aggregate this cluster answers.
    pub fn aggregate(&self) -> Aggregate {
        self.aggregate
    }

    /// The routing policy.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// The serving options.
    pub fn options(&self) -> ClusterOptions {
        self.opts
    }

    /// The shard groups, in gather (merge) order.
    pub fn groups(&self) -> &[ShardGroup] {
        &self.groups
    }

    /// Events logged so far (in deterministic order).
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Drain the event log for assertions.
    pub fn take_events(&mut self) -> Vec<ClusterEvent> {
        std::mem::take(&mut self.events)
    }

    /// Batches served so far (the kill-fault clock).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    fn quorum_needed(&self) -> usize {
        let groups = self.groups.len();
        ((self.opts.quorum * groups as f64).ceil() as usize).clamp(1, groups.max(1))
    }

    /// Fire pending kill faults whose batch counter has arrived.
    fn fire_kills(&mut self, batch: u64) {
        for (i, fault) in self.faults.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if let Fault::Kill {
                batch: at,
                group,
                replica,
            } = *fault
            {
                if at <= batch {
                    self.fired[i] = true;
                    if let Some(rep) = self
                        .groups
                        .get_mut(group)
                        .and_then(|g| g.replicas.get_mut(replica))
                    {
                        if rep.health == ReplicaHealth::Healthy {
                            rep.health = ReplicaHealth::Killed;
                            self.events.push(ClusterEvent::ReplicaKilled {
                                batch,
                                group,
                                replica,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Pick a replica of `group` eligible at `generation` under the
    /// routing policy. Advances the group's round-robin cursor.
    fn pick(group: &mut ShardGroup, policy: RoutePolicy, generation: u64) -> Option<usize> {
        let eligible: Vec<usize> = group
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.health == ReplicaHealth::Healthy && r.generation == generation)
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        match policy {
            RoutePolicy::RoundRobin => {
                let chosen = eligible[group.rr_cursor % eligible.len()];
                group.rr_cursor = group.rr_cursor.wrapping_add(1);
                Some(chosen)
            }
            RoutePolicy::LeastLoaded => eligible
                .into_iter()
                .min_by_key(|&i| (group.replicas[i].served, i)),
            RoutePolicy::GenerationAware => eligible
                .into_iter()
                .max_by_key(|&i| (group.replicas[i].upgrade_seq, std::cmp::Reverse(i))),
        }
    }

    /// Choose the serving generation and a replica per group for one
    /// batch. Never blends generations: picks the newest generation
    /// with quorum coverage, or fails typed.
    fn select(&mut self, batch: u64) -> Result<(u64, u64, Vec<Option<usize>>), ClusterError> {
        let mut gens: Vec<u64> = self
            .groups
            .iter()
            .flat_map(|g| g.replicas.iter())
            .filter(|r| r.health == ReplicaHealth::Healthy)
            .map(|r| r.generation)
            .collect();
        gens.sort_unstable_by(|a, b| b.cmp(a));
        gens.dedup();
        let needed = self.quorum_needed();
        let groups = self.groups.len();
        let Some(&latest) = gens.first() else {
            return Err(ClusterError::QuorumLost {
                covered: 0,
                needed,
                groups,
            });
        };
        let mut best_covered = 0usize;
        for &gen in &gens {
            let covered = self
                .groups
                .iter()
                .filter(|g| {
                    g.replicas
                        .iter()
                        .any(|r| r.health == ReplicaHealth::Healthy && r.generation == gen)
                })
                .count();
            best_covered = best_covered.max(covered);
            if covered >= needed {
                let policy = self.policy;
                let chosen: Vec<Option<usize>> = self
                    .groups
                    .iter_mut()
                    .enumerate()
                    .map(|(gi, group)| {
                        let pick = Cluster::pick(group, policy, gen);
                        if pick.is_none() {
                            self.events
                                .push(ClusterEvent::GroupUncovered { batch, group: gi });
                        }
                        pick
                    })
                    .collect();
                return Ok((gen, latest, chosen));
            }
        }
        Err(ClusterError::QuorumLost {
            covered: best_covered,
            needed,
            groups,
        })
    }

    /// Serve a batch at the moment level: scatter each query to the
    /// chosen replica of every covered group, gather by merging group
    /// moments in group order. Same merge order and finisher as
    /// [`crate::shard::ShardedServer`], so a fully-healthy cluster's
    /// answers are bitwise the single-box answers.
    ///
    /// Degrades typed: a down replica fails over
    /// ([`ClusterEvent::Failover`]), a generation behind the newest
    /// sets [`ClusterBatchReport::stale`], lost coverage below quorum
    /// is [`ClusterError::QuorumLost`]. Never panics on injected
    /// faults; never blends generations within a batch.
    pub fn moments_batch(
        &mut self,
        queries: &[Vec<f64>],
    ) -> Result<(Vec<Moments>, ClusterBatchReport), ClusterError> {
        let route = self.route_batch()?;
        let merged = self.scatter_chosen(&route.chosen, queries);
        let report = route.into_report(queries.len(), self.groups.len(), 0, 0, 0);
        Ok((merged, report))
    }

    /// Make every routing decision for one batch — generation
    /// selection, kill firing, failover re-validation, quorum check,
    /// stale event — without touching any query. Runs once per batch
    /// whether or not the scatter later computes anything, so cache
    /// hits still exercise (and are keyed by) the real routing state.
    fn route_batch(&mut self) -> Result<RouteDecision, ClusterError> {
        let batch = self.batches;
        self.batches += 1;
        let (target, latest, mut chosen) = self.select(batch)?;
        // Kills scheduled at-or-before this batch land *after* routing
        // — the replica dies mid-batch, once already chosen — so the
        // failover pass below re-validates every pick against post-kill
        // health and re-routes the victims.
        self.fire_kills(batch);
        let mut failovers = 0usize;
        for (gi, slot) in chosen.iter_mut().enumerate() {
            if let Some(r) = *slot {
                let healthy = self.groups[gi].replicas[r].health == ReplicaHealth::Healthy
                    && self.groups[gi].replicas[r].generation == target;
                if !healthy {
                    let repick = Cluster::pick(&mut self.groups[gi], self.policy, target);
                    match repick {
                        Some(to) => {
                            failovers += 1;
                            self.events.push(ClusterEvent::Failover {
                                batch,
                                group: gi,
                                from: r,
                                to,
                            });
                            *slot = Some(to);
                        }
                        None => {
                            self.events
                                .push(ClusterEvent::GroupUncovered { batch, group: gi });
                            *slot = None;
                        }
                    }
                }
            }
        }
        let covered = chosen.iter().filter(|c| c.is_some()).count();
        let needed = self.quorum_needed();
        if covered < needed {
            return Err(ClusterError::QuorumLost {
                covered,
                needed,
                groups: self.groups.len(),
            });
        }
        let stale = target < latest;
        if stale {
            self.events.push(ClusterEvent::ServedStale {
                batch,
                served: target,
                latest,
            });
        }
        Ok(RouteDecision {
            target,
            latest,
            stale,
            chosen,
            covered,
            failovers,
        })
    }

    /// Fan a batch out over pre-assigned (group, replica) jobs and
    /// merge per-group moments in group order. All decisions were made
    /// by [`Cluster::route_batch`]; this is pure compute —
    /// deterministic at any thread count.
    fn scatter_chosen(&mut self, chosen: &[Option<usize>], queries: &[Vec<f64>]) -> Vec<Moments> {
        let jobs: Vec<(usize, usize)> = chosen
            .iter()
            .enumerate()
            .filter_map(|(g, r)| r.map(|r| (g, r)))
            .collect();
        let per_group = scatter_moments(
            &self.groups,
            &jobs,
            queries,
            self.opts.threads.max(1),
            self.opts.max_shard.max(1),
        );
        let merged: Vec<Moments> = (0..queries.len())
            .map(|i| {
                per_group
                    .iter()
                    .map(|g| g[i])
                    .fold(Moments::ZERO, Moments::merge)
            })
            .collect();
        // `served` counts queries a replica actually computed — cache
        // hits never reach this point.
        for &(g, r) in &jobs {
            self.groups[g].replicas[r].served += queries.len() as u64;
        }
        merged
    }

    /// Serve a batch of final answers: [`Cluster::moments_batch`]
    /// finished per query with the shared guarded finisher, so a
    /// healthy cluster is bitwise a [`crate::shard::ShardedServer`].
    ///
    /// With [`ClusterOptions::cache`] enabled, answers are fronted by
    /// the generation-keyed cache and in-batch dedup. Routing still
    /// runs for every batch (kills fire, failovers re-validate, quorum
    /// is checked, staleness is reported) and cache keys carry the
    /// generation this batch actually routed to — a stale batch can
    /// only hit entries served at that same stale generation, so hits
    /// are bitwise the answers the scatter would have computed.
    ///
    /// The cache only engages on a **fully covered** batch. A degraded
    /// batch (quorum met with uncovered groups) folds [`Moments::ZERO`]
    /// into every answer — bits no fully-covered batch at the same
    /// generation would compute — so it must neither store its partial
    /// answers (a later healthy batch would serve them as hits) nor be
    /// served full answers from the cache (contradicting its report's
    /// `covered` count). In-batch dedup stays on either way: every
    /// query in a batch shares one route, so collapsing duplicates is
    /// bitwise safe even when degraded.
    pub fn answer_batch(
        &mut self,
        queries: &[Vec<f64>],
    ) -> Result<(Vec<f64>, ClusterBatchReport), ClusterError> {
        let policy = self.opts.cache;
        if !policy.enabled() {
            let (moments, report) = self.moments_batch(queries)?;
            let agg = self.aggregate;
            let answers = moments
                .into_iter()
                .map(|m| finish_guarded(agg, m))
                .collect();
            return Ok((answers, report));
        }
        let route = self.route_batch()?;
        let cache = self.cache.clone();
        let front = if route.covered == self.groups.len() {
            cache
                .as_deref()
                .map(|c| (c, aggregate_tag(self.aggregate), route.target))
        } else {
            None
        };
        let agg = self.aggregate;
        let (answers, tally) = serve_cached(front, policy.dedup, queries, |miss_idxs| {
            let sub: Vec<Vec<f64>> = miss_idxs.iter().map(|&i| queries[i].clone()).collect();
            self.scatter_chosen(&route.chosen, &sub)
                .into_iter()
                .map(|m| finish_guarded(agg, m))
                .collect()
        });
        let report = route.into_report(
            queries.len(),
            self.groups.len(),
            tally.cache_hits,
            tally.cache_misses,
            tally.dedup_hits,
        );
        Ok((answers, report))
    }

    /// Find the first unfired upgrade fault targeting `(group,
    /// replica)` and mark it fired.
    fn take_upgrade_fault(&mut self, group: usize, replica: usize) -> Option<Fault> {
        for (i, fault) in self.faults.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            let hit = matches!(
                *fault,
                Fault::StaleGeneration { group: g, replica: r }
                | Fault::TornManifest { group: g, replica: r }
                | Fault::CorruptArtifact { group: g, replica: r }
                    if g == group && r == replica
            );
            if hit {
                self.fired[i] = true;
                return Some(self.faults[i]);
            }
        }
        None
    }

    /// Advance the rolling upgrade by one replica: find the first
    /// healthy, unpinned replica behind the manifest's generation (in
    /// group, then replica order) and swap its artifact in. Armed
    /// upgrade faults intercept the swap with their typed outcome.
    /// Returns [`UpgradeStep::Done`] when no replica is upgradeable.
    pub fn rolling_upgrade_step(
        &mut self,
        manifest_path: impl AsRef<Path>,
    ) -> Result<UpgradeStep, ClusterError> {
        let manifest_path = manifest_path.as_ref();
        let raw = std::fs::read(manifest_path).map_err(|e| PersistError::Io(e.to_string()))?;
        let manifest = persist::decode_manifest(bytes::Bytes::from(raw))?;
        if manifest.aggregate != self.aggregate {
            return Err(ClusterError::BadTopology(format!(
                "manifest aggregate {} does not match cluster aggregate {}",
                manifest.aggregate.name(),
                self.aggregate.name()
            )));
        }
        let target = manifest.generation;
        let candidate = self.groups.iter().enumerate().find_map(|(gi, g)| {
            g.physical.and_then(|phys| {
                g.replicas
                    .iter()
                    .position(|r| {
                        r.health == ReplicaHealth::Healthy && !r.pinned && r.generation < target
                    })
                    .map(|ri| (gi, ri, phys))
            })
        });
        let Some((gi, ri, phys)) = candidate else {
            return Ok(UpgradeStep::Done { generation: target });
        };
        if phys >= manifest.shards.len() {
            return Err(ClusterError::BadTopology(format!(
                "group {gi} is backed by manifest shard {phys}, but the manifest has only {} shards",
                manifest.shards.len()
            )));
        }
        match self.take_upgrade_fault(gi, ri) {
            Some(Fault::StaleGeneration { .. }) => {
                let gen = self.groups[gi].replicas[ri].generation;
                self.groups[gi].replicas[ri].pinned = true;
                self.events.push(ClusterEvent::UpgradePinnedStale {
                    group: gi,
                    replica: ri,
                    generation: gen,
                });
                Ok(UpgradeStep::PinnedStale {
                    group: gi,
                    replica: ri,
                    generation: gen,
                })
            }
            Some(Fault::TornManifest { .. }) => {
                let gen = self.groups[gi].replicas[ri].generation;
                self.groups[gi].replicas[ri].pinned = true;
                self.events.push(ClusterEvent::UpgradeTorn {
                    group: gi,
                    replica: ri,
                    generation: gen,
                });
                Ok(UpgradeStep::Torn {
                    group: gi,
                    replica: ri,
                    generation: gen,
                })
            }
            Some(Fault::CorruptArtifact { .. }) => {
                self.groups[gi].replicas[ri].health = ReplicaHealth::CorruptArtifact;
                self.events.push(ClusterEvent::UpgradeCorrupt {
                    group: gi,
                    replica: ri,
                });
                Ok(UpgradeStep::Corrupt {
                    group: gi,
                    replica: ri,
                })
            }
            _ => match persist::load_shard(manifest_path, phys) {
                Ok((sketch, m)) => {
                    let from = self.groups[gi].replicas[ri].generation;
                    self.upgrade_seq += 1;
                    let layout = self.opts.layout.then(|| sketch.serving_layout());
                    let rep = &mut self.groups[gi].replicas[ri];
                    rep.sketch = sketch;
                    rep.layout = layout;
                    rep.generation = m.generation;
                    rep.upgrade_seq = self.upgrade_seq;
                    self.events.push(ClusterEvent::UpgradeApplied {
                        group: gi,
                        replica: ri,
                        from,
                        to: m.generation,
                    });
                    Ok(UpgradeStep::Upgraded {
                        group: gi,
                        replica: ri,
                        from,
                        to: m.generation,
                    })
                }
                Err(e) => {
                    self.groups[gi].replicas[ri].health = ReplicaHealth::LoadFailed;
                    let error = e.to_string();
                    self.events.push(ClusterEvent::ReplicaLoadFailed {
                        group: gi,
                        replica: ri,
                        error: error.clone(),
                    });
                    Ok(UpgradeStep::LoadFailed {
                        group: gi,
                        replica: ri,
                        error,
                    })
                }
            },
        }
    }

    /// Run [`Cluster::rolling_upgrade_step`] to completion. Returns
    /// the step log ending in [`UpgradeStep::Done`]. Faulted replicas
    /// stay behind or out of rotation — the roll completes around
    /// them; quorum-checking their absence is the serving path's job.
    pub fn rolling_upgrade(
        &mut self,
        manifest_path: impl AsRef<Path>,
    ) -> Result<Vec<UpgradeStep>, ClusterError> {
        let manifest_path = manifest_path.as_ref();
        let cap = self.groups.iter().map(|g| g.replicas.len()).sum::<usize>() + 1;
        let mut steps = Vec::new();
        for _ in 0..cap {
            let step = self.rolling_upgrade_step(manifest_path)?;
            let done = matches!(step, UpgradeStep::Done { .. });
            steps.push(step);
            if done {
                return Ok(steps);
            }
        }
        Err(ClusterError::BadTopology(
            "rolling upgrade did not converge (a replica re-entered the upgradeable set \
             every step)"
                .into(),
        ))
    }

    /// Bring a downed or pinned replica back: reload its group's shard
    /// from `manifest_path`, clear pin and health, and return the
    /// generation it now serves.
    pub fn repair_replica(
        &mut self,
        group: usize,
        replica: usize,
        manifest_path: impl AsRef<Path>,
    ) -> Result<u64, ClusterError> {
        let Some(phys) = self.groups.get(group).and_then(|g| g.physical) else {
            return Err(ClusterError::BadTopology(format!(
                "group {group} has no persistence backing (materialized in memory) or does \
                 not exist; rebuild it instead of repairing"
            )));
        };
        if self.groups[group].replicas.get(replica).is_none() {
            return Err(ClusterError::BadTopology(format!(
                "group {group} has no replica {replica}"
            )));
        }
        let (sketch, m) = persist::load_shard(manifest_path.as_ref(), phys)?;
        self.upgrade_seq += 1;
        let layout = self.opts.layout.then(|| sketch.serving_layout());
        let rep = &mut self.groups[group].replicas[replica];
        rep.sketch = sketch;
        rep.layout = layout;
        rep.generation = m.generation;
        rep.health = ReplicaHealth::Healthy;
        rep.pinned = false;
        rep.upgrade_seq = self.upgrade_seq;
        self.events.push(ClusterEvent::ReplicaRepaired {
            group,
            replica,
            generation: m.generation,
        });
        Ok(m.generation)
    }

    /// Refine the plan K → K·`factor` without rebuilding: each group
    /// keeps its models and now *covers* `factor` logical shards of
    /// the refined plan. Row-stable ([`ShardPlan::refine`]) and answer
    /// preserving — every physical model is still evaluated once per
    /// group and groups merge in the same order, so answers are
    /// bitwise unchanged.
    pub fn rebalance(&mut self, factor: usize) -> Result<ShardPlan, ClusterError> {
        let refined = self.plan.refine(factor)?;
        let old_n = self.plan.shards();
        for group in &mut self.groups {
            let mut logical: Vec<usize> = group
                .logical
                .iter()
                .flat_map(|&l| (0..factor).map(move |j| l + j * old_n))
                .collect();
            logical.sort_unstable();
            group.logical = logical;
        }
        self.plan = refined;
        self.events.push(ClusterEvent::Rebalanced {
            factor,
            shards: refined.shards(),
        });
        Ok(refined)
    }

    /// Split a coarse (post-rebalance) group into one group per
    /// logical shard, building each fine shard's models from the data.
    /// Seed derivation is positional (new-plan shard index), so a
    /// fully materialized K→2K cluster is bitwise a fresh 2K build.
    /// New groups inherit the parent's replica bookkeeping
    /// (generation, health, pin, served, cursor) but have no
    /// persistence backing until re-saved.
    #[allow(clippy::too_many_arguments)]
    pub fn materialize_group(
        &mut self,
        group: usize,
        data: &Dataset,
        measure: usize,
        predicate: &dyn PredicateFn,
        train_queries: &[Vec<f64>],
        cfg: &NeuroSketchConfig,
    ) -> Result<(), ClusterError> {
        let Some(g) = self.groups.get(group) else {
            return Err(ClusterError::BadTopology(format!(
                "group {group} does not exist"
            )));
        };
        if g.logical.len() <= 1 {
            return Ok(());
        }
        let kinds = self.aggregate.required_moments().ok_or_else(|| {
            ClusterError::BadTopology(format!(
                "aggregate {} is not moment-composable",
                self.aggregate.name()
            ))
        })?;
        self.plan.validate(data.rows())?;
        let assignment = self.plan.assignment(data.rows());
        let logical = g.logical.clone();
        let tables: Vec<(usize, Dataset)> = logical
            .iter()
            .map(|&l| {
                let rows = assignment.get(l).map(Vec::as_slice).unwrap_or(&[]);
                if rows.is_empty() {
                    return Err(ClusterError::Sketch(SketchError::BadConfig(format!(
                        "logical shard {l} owns no rows; materialization would build an \
                         untrained model"
                    ))));
                }
                Ok((l, data.select_rows(rows)))
            })
            .collect::<Result<_, _>>()?;
        let built: Vec<Result<(usize, ShardSketch), SketchError>> = par::par_map_init(
            &tables,
            self.opts.threads.max(1),
            || (),
            |_, _, (l, table)| {
                build_shard_sketch(*l, table, measure, predicate, kinds, train_queries, cfg)
                    .map(|(sketch, _, _)| (*l, sketch))
            },
        );
        let mut fine: Vec<(usize, ShardSketch)> = Vec::with_capacity(built.len());
        for r in built {
            fine.push(r?);
        }
        let parent = self.groups.remove(group);
        for (l, sketch) in fine {
            let layout = self.opts.layout.then(|| sketch.serving_layout());
            let replicas = parent
                .replicas
                .iter()
                .map(|r| Replica {
                    sketch: sketch.clone(),
                    layout: layout.clone(),
                    generation: r.generation,
                    health: r.health,
                    pinned: r.pinned,
                    served: r.served,
                    upgrade_seq: r.upgrade_seq,
                })
                .collect();
            self.groups.push(ShardGroup {
                logical: vec![l],
                physical: None,
                replicas,
                rr_cursor: parent.rr_cursor,
            });
        }
        // Gather order invariant: groups sorted by lowest logical id.
        // A child's minimum is its single id, and children of shard l
        // under RoundRobin refinement include l itself, so the sort
        // restores exactly the order a fresh fine-grained build has.
        self.groups
            .sort_by_key(|g| g.logical.first().copied().unwrap_or(usize::MAX));
        self.events.push(ClusterEvent::GroupMaterialized {
            group,
            shards: logical,
        });
        Ok(())
    }

    /// A read-only [`Deployment`] view of replica column `replica` —
    /// every group's slot `replica`, bypassing health and routing.
    /// `None` if some group lacks that slot. This is a *diagnostic
    /// instrument*: [`crate::maintenance::DriftMonitor::check_many`]
    /// scores each column against one probe labeling to expose
    /// per-replica drift that whole-cluster checks average away.
    pub fn replica_view(&self, replica: usize) -> Option<ClusterReplicaView<'_>> {
        if self.groups.iter().all(|g| replica < g.replicas.len()) && !self.groups.is_empty() {
            Some(ClusterReplicaView {
                cluster: self,
                replica,
            })
        } else {
            None
        }
    }
}

/// Pure fan-out: evaluate pre-assigned `(group, replica)` jobs over a
/// query batch on the worker pool. Outer index of the result = job
/// index (ascending group order), so the caller's merge order is fixed
/// before any thread runs.
fn scatter_moments(
    groups: &[ShardGroup],
    jobs: &[(usize, usize)],
    queries: &[Vec<f64>],
    threads: usize,
    max_chunk: usize,
) -> Vec<Vec<Moments>> {
    if queries.is_empty() {
        return jobs.iter().map(|_| Vec::new()).collect();
    }
    par::par_map_init(
        jobs,
        threads,
        BatchScratch::default,
        |scratch, _, &(g, r)| {
            let rep = &groups[g].replicas[r];
            let mut moments = Vec::with_capacity(queries.len());
            for chunk in queries.chunks(max_chunk) {
                // The layout path is bitwise identical to the plain
                // path (`ShardSketch::moments_batch_with_layout`'s
                // contract), so routing through it never perturbs the
                // cluster's replica-interchangeability guarantees.
                moments.extend(match &rep.layout {
                    Some(layout) => rep.sketch.moments_batch_with_layout(layout, scratch, chunk),
                    None => rep.sketch.moments_batch_with(scratch, chunk),
                });
            }
            moments
        },
    )
}

/// Read-only [`Deployment`] over one replica column of a [`Cluster`].
/// See [`Cluster::replica_view`].
pub struct ClusterReplicaView<'a> {
    cluster: &'a Cluster,
    replica: usize,
}

impl ClusterReplicaView<'_> {
    fn column(&self) -> impl Iterator<Item = &Replica> {
        self.cluster
            .groups
            .iter()
            .map(move |g| &g.replicas[self.replica])
    }

    fn scatter(&self, queries: &[Vec<f64>]) -> Vec<Moments> {
        let jobs: Vec<(usize, usize)> = (0..self.cluster.groups.len())
            .map(|g| (g, self.replica))
            .collect();
        let per_group = scatter_moments(
            &self.cluster.groups,
            &jobs,
            queries,
            self.cluster.opts.threads.max(1),
            self.cluster.opts.max_shard.max(1),
        );
        (0..queries.len())
            .map(|i| {
                per_group
                    .iter()
                    .map(|g| g[i])
                    .fold(Moments::ZERO, Moments::merge)
            })
            .collect()
    }
}

impl Deployment for ClusterReplicaView<'_> {
    fn answer_batch(&self, queries: &[Vec<f64>]) -> (Vec<f64>, DeployStats) {
        let agg = self.cluster.aggregate;
        let answers = self
            .scatter(queries)
            .into_iter()
            .map(|m| finish_guarded(agg, m))
            .collect();
        let max_chunk = self.cluster.opts.max_shard.max(1);
        let total_kinds: usize = self.column().map(|r| r.sketch.kinds().count()).sum();
        let stats = DeployStats {
            queries: queries.len(),
            sketch: queries.len(),
            shard_count: self.cluster.groups.len(),
            model_batches: total_kinds * queries.len().div_ceil(max_chunk),
            ..DeployStats::default()
        };
        (answers, stats)
    }

    fn moments_batch(&self, queries: &[Vec<f64>]) -> Option<Vec<Moments>> {
        Some(self.scatter(queries))
    }

    fn describe(&self) -> DeploymentInfo {
        let mut gens = self.column().map(|r| r.generation);
        let first = gens.next();
        let generation = match first {
            Some(g) if gens.all(|other| other == g) => Some(g),
            _ => None,
        };
        DeploymentInfo {
            kind: DeployKind::Replicated,
            units: self.cluster.groups.len(),
            param_count: self.column().map(|r| r.sketch.param_count()).sum(),
            generation,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.column().map(|r| r.sketch.artifact_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_generation_is_deterministic_and_serde_roundtrips() {
        let a = FaultPlan::generate(42, 4, 3, 16, 8);
        let b = FaultPlan::generate(42, 4, 3, 16, 8);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 4, 3, 16, 8);
        assert_ne!(a, c, "different seeds should give different plans");
        assert_eq!(a.faults.len(), 8);
        for f in &a.faults {
            match *f {
                Fault::Kill {
                    batch,
                    group,
                    replica,
                } => {
                    assert!(batch < 16 && group < 4 && replica < 3);
                }
                Fault::StaleGeneration { group, replica }
                | Fault::TornManifest { group, replica }
                | Fault::CorruptArtifact { group, replica } => {
                    assert!(group < 4 && replica < 3);
                }
            }
        }
        let json = serde_json::to_string(&a).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn quorum_needed_math() {
        fn needed(groups: usize, quorum: f64) -> usize {
            ((quorum * groups as f64).ceil() as usize).clamp(1, groups.max(1))
        }
        assert_eq!(needed(4, 1.0), 4);
        assert_eq!(needed(4, 0.5), 2);
        assert_eq!(needed(4, 0.51), 3);
        assert_eq!(needed(1, 0.1), 1);
        assert_eq!(needed(3, 0.34), 2);
    }

    #[test]
    fn cluster_options_validation_is_typed() {
        for quorum in [0.0, -1.0, 1.5, f64::NAN] {
            let opts = ClusterOptions {
                quorum,
                ..ClusterOptions::default()
            };
            assert!(matches!(
                validate_opts(&opts),
                Err(ClusterError::BadTopology(_))
            ));
        }
        assert!(validate_opts(&ClusterOptions::default()).is_ok());
    }
}
