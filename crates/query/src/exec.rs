//! Exact query execution — the ground-truth oracle.
//!
//! `QueryEngine` evaluates the observed query function
//! `f_D(q) = AGG({x ∈ D : P_f(q,x) = 1})` exactly, as the paper's
//! training-set generation does. Two things make it fast enough to label
//! hundred-thousand-query workloads:
//!
//! * a **sorted-column index** built once per engine: every attribute's
//!   values sorted with their row ids, plus prefix sums of the measure's
//!   first two moments in sorted order. A single-attribute exact range
//!   predicate (the common workload shape) answers COUNT/SUM/AVG/STD with
//!   two binary searches and no row access at all; every other predicate
//!   with axis bounds scans only the candidate rows of its most selective
//!   attribute and verifies the full predicate on those;
//! * **parallel batch labeling** over the shared [`par`] worker pool,
//!   with one reusable scratch buffer per worker (mirroring the paper's
//!   GPU-parallel label generation).
//!
//! Predicates with no axis bounds (e.g. half-spaces) fall back to the
//! full scan.

use crate::aggregate::{Aggregate, Moments};
use crate::predicate::PredicateFn;
use datagen::Dataset;

/// One attribute's slice of the sorted-column index.
#[derive(Debug, Clone)]
struct AttrIndex {
    /// The attribute's values in ascending order.
    vals: Vec<f64>,
    /// Row ids aligned with `vals`.
    rows: Vec<u32>,
    /// `prefix[i]` = sum of the measure over the first `i` sorted rows.
    prefix: Vec<f64>,
    /// Like `prefix`, for the squared measure (for STD).
    prefix2: Vec<f64>,
}

impl AttrIndex {
    fn build(data: &Dataset, attr: usize, measure: usize) -> AttrIndex {
        let n = data.rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let col = data.column(attr);
        order.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
        let vals: Vec<f64> = order.iter().map(|&r| col[r as usize]).collect();
        let mut prefix = Vec::with_capacity(n + 1);
        let mut prefix2 = Vec::with_capacity(n + 1);
        let (mut s, mut s2) = (0.0f64, 0.0f64);
        prefix.push(0.0);
        prefix2.push(0.0);
        let raw = data.raw();
        let d = data.dims();
        for &r in &order {
            let m = raw[r as usize * d + measure];
            s += m;
            s2 += m * m;
            prefix.push(s);
            prefix2.push(s2);
        }
        AttrIndex {
            vals,
            rows: order,
            prefix,
            prefix2,
        }
    }

    /// Half-open sorted range `[lo, hi)` of positions whose value is in
    /// `[lo_v, hi_v)`.
    fn range_half_open(&self, lo_v: f64, hi_v: f64) -> (usize, usize) {
        let lo = self.vals.partition_point(|v| *v < lo_v);
        let hi = self.vals.partition_point(|v| *v < hi_v);
        (lo, hi.max(lo))
    }

    /// Conservative candidate range: values in `[lo_v, hi_v]`, endpoints
    /// included (safe for predicates whose bounds are inclusive).
    fn range_inclusive(&self, lo_v: f64, hi_v: f64) -> (usize, usize) {
        let lo = self.vals.partition_point(|v| *v < lo_v);
        let hi = self.vals.partition_point(|v| *v <= hi_v);
        (lo, hi.max(lo))
    }
}

/// Exact evaluator of query functions over a dataset.
///
/// Construction sorts every attribute column once (`O(d · n log n)`);
/// each engine is expected to label many queries, which is exactly how
/// the build pipeline uses it.
#[derive(Debug, Clone)]
pub struct QueryEngine<'a> {
    data: &'a Dataset,
    measure: usize,
    index: Vec<AttrIndex>,
}

impl<'a> QueryEngine<'a> {
    /// Evaluate over `data`, aggregating the `measure` column.
    ///
    /// # Panics
    /// Panics if `measure` is out of range — this is a programming error,
    /// not user input.
    pub fn new(data: &'a Dataset, measure: usize) -> Self {
        assert!(
            measure < data.dims(),
            "measure column {measure} out of range"
        );
        let index = (0..data.dims())
            .map(|a| AttrIndex::build(data, a, measure))
            .collect();
        QueryEngine {
            data,
            measure,
            index,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.data
    }

    /// The measure column index.
    pub fn measure(&self) -> usize {
        self.measure
    }

    /// Exact answer `f_D(q)`.
    pub fn answer(&self, pred: &dyn PredicateFn, agg: Aggregate, q: &[f64]) -> f64 {
        let mut scratch = Vec::new();
        self.answer_with(&mut scratch, pred, agg, q)
    }

    /// Exact answer using a caller-provided scratch buffer, so repeated
    /// calls (batch labeling, per-worker loops) allocate nothing in
    /// steady state.
    pub fn answer_with(
        &self,
        scratch: &mut Vec<f64>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> f64 {
        debug_assert_eq!(q.len(), pred.query_dim());
        if let Some(bounds) = pred.axis_bounds(q) {
            if !bounds.is_empty() {
                return self.answer_pruned(scratch, pred, agg, q, &bounds);
            }
        }
        self.answer_scan(scratch, pred, agg, q)
    }

    /// Index-assisted path: answer from prefix sums when the bounds fully
    /// define the predicate over one attribute, otherwise verify the
    /// predicate on the most selective attribute's candidate rows only.
    /// Non-MEDIAN aggregates delegate to the moments path — one copy of
    /// the index math serves both `answer` and `moments`, which is what
    /// keeps the sharded gather-equals-answer invariant structural.
    fn answer_pruned(
        &self,
        scratch: &mut Vec<f64>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
        bounds: &[(usize, f64, f64)],
    ) -> f64 {
        if matches!(agg, Aggregate::Median) {
            // MEDIAN is not a function of moments: materialize the
            // candidate-verified matches and select.
            scratch.clear();
            scratch.extend(self.pruned_matching(pred, q, bounds));
            return agg.apply(scratch);
        }
        self.moments_pruned(pred, q, bounds)
            .finish(agg)
            .expect("every non-median aggregate is a function of moments")
    }

    /// Candidate verification shared by the pruned answer and moments
    /// paths: pick the most selective bounded attribute and yield the
    /// measure values of its candidate rows that satisfy the full
    /// predicate. Endpoints are kept inclusive so bounding-box pruning
    /// (rotated rectangles, spheres) stays a strict superset of the
    /// true match set.
    fn pruned_matching<'q>(
        &'q self,
        pred: &'q dyn PredicateFn,
        q: &'q [f64],
        bounds: &[(usize, f64, f64)],
    ) -> impl Iterator<Item = f64> + 'q {
        let (mut best, mut best_width) = (None, usize::MAX);
        for &(attr, lo_v, hi_v) in bounds {
            let ai = &self.index[attr];
            let (lo, hi) = ai.range_inclusive(lo_v, hi_v);
            if hi - lo < best_width {
                best_width = hi - lo;
                best = Some((attr, lo, hi));
            }
        }
        let (attr, lo, hi) = best.expect("bounds nonempty");
        let candidates = &self.index[attr].rows[lo..hi];
        let raw = self.data.raw();
        let d = self.data.dims();
        candidates.iter().filter_map(move |&r| {
            let row = &raw[r as usize * d..(r as usize + 1) * d];
            if pred.matches(q, row) {
                Some(row[self.measure])
            } else {
                None
            }
        })
    }

    /// Full-scan fallback for predicates with no axis bounds.
    fn answer_scan(
        &self,
        scratch: &mut Vec<f64>,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        q: &[f64],
    ) -> f64 {
        let matching = self
            .data
            .iter_rows()
            .filter(|row| pred.matches(q, row))
            .map(|row| row[self.measure]);
        match agg {
            Aggregate::Median => {
                scratch.clear();
                scratch.extend(matching);
                agg.apply(scratch)
            }
            _ => agg
                .apply_streaming(matching)
                .expect("streaming covers all non-median aggregates"),
        }
    }

    /// Exact first three moments `(n, Σ, Σ²)` of the matching measure
    /// values — the sufficient statistics every non-MEDIAN aggregate is
    /// a function of ([`Aggregate::from_moments`]).
    ///
    /// This is the labeling primitive for sharded deployments
    /// (`neurosketch::shard`): per-shard engines label the same workload
    /// with per-shard moments, one model is trained per component, and
    /// gathered answers recombine exactly.
    pub fn moments(&self, pred: &dyn PredicateFn, q: &[f64]) -> Moments {
        debug_assert_eq!(q.len(), pred.query_dim());
        if let Some(bounds) = pred.axis_bounds(q) {
            if !bounds.is_empty() {
                return self.moments_pruned(pred, q, &bounds);
            }
        }
        Moments::of(
            self.data
                .iter_rows()
                .filter(|row| pred.matches(q, row))
                .map(|row| row[self.measure]),
        )
    }

    /// Index-assisted moment computation, mirroring the two pruned
    /// answer paths: prefix-sum differences when the bounds exactly
    /// define a single-attribute predicate, candidate verification on
    /// the most selective attribute otherwise.
    fn moments_pruned(
        &self,
        pred: &dyn PredicateFn,
        q: &[f64],
        bounds: &[(usize, f64, f64)],
    ) -> Moments {
        if pred.axis_bounds_exact() && bounds.len() == 1 {
            let (attr, lo_v, hi_v) = bounds[0];
            let ai = &self.index[attr];
            let (lo, hi) = ai.range_half_open(lo_v, hi_v);
            return Moments {
                n: (hi - lo) as f64,
                s: ai.prefix[hi] - ai.prefix[lo],
                s2: ai.prefix2[hi] - ai.prefix2[lo],
            };
        }
        Moments::of(self.pruned_matching(pred, q, bounds))
    }

    /// Moment-label a batch of queries, in parallel across `threads`
    /// workers on the shared [`par`] pool; the moment analogue of
    /// [`QueryEngine::label_batch`]. Results are in input order.
    pub fn label_moments_batch(
        &self,
        pred: &dyn PredicateFn,
        queries: &[Vec<f64>],
        threads: usize,
    ) -> Vec<Moments> {
        let threads = effective_threads(queries.len(), threads);
        par::par_map(queries, threads, |_, q| self.moments(pred, q))
    }

    /// Label a batch of queries, in parallel across `threads` workers on
    /// the shared [`par`] pool. Results are in input order; each worker
    /// reuses one scratch buffer across all its queries.
    pub fn label_batch(
        &self,
        pred: &dyn PredicateFn,
        agg: Aggregate,
        queries: &[Vec<f64>],
        threads: usize,
    ) -> Vec<f64> {
        let threads = effective_threads(queries.len(), threads);
        par::par_map_init(queries, threads, Vec::new, |scratch, _, q| {
            self.answer_with(scratch, pred, agg, q)
        })
    }
}

/// Shared small-batch downgrade for the labeling entry points: below
/// two queries per worker, thread spawn overhead beats the parallelism,
/// so run sequentially.
fn effective_threads(queries: usize, threads: usize) -> usize {
    if queries < 2 * threads.max(1) {
        1
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{HalfSpace, Range, RotatedRect};
    use datagen::Dataset;

    fn grid_data() -> Dataset {
        // 10 rows: attr0 = i/10, measure = i.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0, i as f64]).collect();
        Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap()
    }

    #[test]
    fn count_and_sum_over_half_range() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        // attr0 in [0, 0.5): rows 0..=4.
        let q = [0.0, 0.5];
        assert_eq!(eng.answer(&pred, Aggregate::Count, &q), 5.0);
        assert_eq!(eng.answer(&pred, Aggregate::Sum, &q), 10.0);
        assert_eq!(eng.answer(&pred, Aggregate::Avg, &q), 2.0);
        assert_eq!(eng.answer(&pred, Aggregate::Median, &q), 2.0);
    }

    #[test]
    fn empty_range_yields_zero() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let q = [0.95, 0.01];
        for agg in Aggregate::ALL {
            assert_eq!(eng.answer(&pred, agg, &q), 0.0, "{}", agg.name());
        }
    }

    #[test]
    fn batch_labels_match_sequential_and_parallel() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let queries: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 50.0, 0.3]).collect();
        let seq = eng.label_batch(&pred, Aggregate::Sum, &queries, 1);
        let par = eng.label_batch(&pred, Aggregate::Sum, &queries, 4);
        assert_eq!(seq, par);
        assert_eq!(seq[0], eng.answer(&pred, Aggregate::Sum, &queries[0]));
    }

    /// The indexed paths must agree with a straight full scan on every
    /// aggregate and predicate shape (single-attr exact, multi-attr
    /// exact, bounding-box pruned, unprunable).
    #[test]
    fn indexed_paths_match_full_scan() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i as f64 * 0.37) % 1.0,
                    (i as f64 * 0.71) % 1.0,
                    ((i * i) as f64 * 0.13) % 1.0,
                ]
            })
            .collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into(), "m".into()], &rows).unwrap();
        let eng = QueryEngine::new(&d, 2);
        let scan = |pred: &dyn PredicateFn, agg: Aggregate, q: &[f64]| -> f64 {
            let mut vals: Vec<f64> = d
                .iter_rows()
                .filter(|row| pred.matches(q, row))
                .map(|row| row[2])
                .collect();
            agg.apply(&mut vals)
        };
        let preds: Vec<(Box<dyn PredicateFn>, Vec<f64>)> = vec![
            (Box::new(Range::new(vec![0], 3).unwrap()), vec![0.2, 0.5]),
            (
                Box::new(Range::new(vec![0, 1], 3).unwrap()),
                vec![0.1, 0.3, 0.6, 0.5],
            ),
            (
                Box::new(RotatedRect::new(0, 1, 3).unwrap()),
                vec![0.2, 0.2, 0.7, 0.6, 0.3],
            ),
            (Box::new(HalfSpace::new(0, 1, 3).unwrap()), vec![0.5, 0.1]),
        ];
        for (pred, q) in &preds {
            for agg in Aggregate::ALL {
                let got = eng.answer(pred.as_ref(), agg, q);
                let want = scan(pred.as_ref(), agg, q);
                assert!(
                    (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "{} on {:?}: {got} vs {want}",
                    agg.name(),
                    q
                );
            }
        }
    }

    /// `moments(pred, q).finish(agg)` must agree with `answer` on every
    /// index path (prefix-sum exact, candidate-verified, full scan) —
    /// the sharded gather math is only as good as this equivalence.
    #[test]
    fn moments_agree_with_answers_on_every_path() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i as f64 * 0.37) % 1.0,
                    (i as f64 * 0.71) % 1.0,
                    ((i * i) as f64 * 0.13) % 1.0,
                ]
            })
            .collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into(), "m".into()], &rows).unwrap();
        let eng = QueryEngine::new(&d, 2);
        let preds: Vec<(Box<dyn PredicateFn>, Vec<f64>)> = vec![
            (Box::new(Range::new(vec![0], 3).unwrap()), vec![0.2, 0.5]),
            (
                Box::new(Range::new(vec![0, 1], 3).unwrap()),
                vec![0.1, 0.3, 0.6, 0.5],
            ),
            (
                Box::new(RotatedRect::new(0, 1, 3).unwrap()),
                vec![0.2, 0.2, 0.7, 0.6, 0.3],
            ),
            (Box::new(HalfSpace::new(0, 1, 3).unwrap()), vec![0.5, 0.1]),
        ];
        for (pred, q) in &preds {
            let m = eng.moments(pred.as_ref(), q);
            for agg in [
                Aggregate::Count,
                Aggregate::Sum,
                Aggregate::Avg,
                Aggregate::Std,
            ] {
                let direct = eng.answer(pred.as_ref(), agg, q);
                let via = m.finish(agg).unwrap();
                assert!(
                    (direct - via).abs() < 1e-9 * (1.0 + direct.abs()),
                    "{} on {:?}: {direct} vs {via}",
                    agg.name(),
                    q
                );
            }
        }
    }

    /// Per-shard moments of a row partition merge to the whole table's
    /// moments — the exact-composition invariant sharding relies on.
    #[test]
    fn moments_compose_across_row_partitions() {
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i as f64 * 0.59) % 1.0, (i as f64 * 1.7) % 13.0])
            .collect();
        let d = Dataset::from_rows(vec!["a".into(), "m".into()], &rows).unwrap();
        let shards: Vec<Dataset> = (0..3)
            .map(|k| {
                let part: Vec<Vec<f64>> = rows.iter().skip(k).step_by(3).cloned().collect();
                Dataset::from_rows(vec!["a".into(), "m".into()], &part).unwrap()
            })
            .collect();
        let pred = Range::new(vec![0], 2).unwrap();
        let whole = QueryEngine::new(&d, 1);
        let engines: Vec<QueryEngine<'_>> = shards.iter().map(|s| QueryEngine::new(s, 1)).collect();
        for q in [[0.0, 1.0], [0.2, 0.5], [0.7, 0.1], [0.9, 0.4]] {
            let gathered = engines
                .iter()
                .fold(crate::aggregate::Moments::ZERO, |acc, e| {
                    acc.merge(e.moments(&pred, &q))
                });
            let direct = whole.moments(&pred, &q);
            assert_eq!(gathered.n, direct.n, "COUNT is bitwise under sharding");
            assert!((gathered.s - direct.s).abs() < 1e-9 * (1.0 + direct.s.abs()));
            assert!((gathered.s2 - direct.s2).abs() < 1e-9 * (1.0 + direct.s2.abs()));
        }
    }

    #[test]
    fn moment_labels_match_sequential_and_parallel() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let queries: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 50.0, 0.3]).collect();
        let seq = eng.label_moments_batch(&pred, &queries, 1);
        let par = eng.label_moments_batch(&pred, &queries, 4);
        assert_eq!(seq, par);
        assert_eq!(seq[7], eng.moments(&pred, &queries[7]));
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let d = grid_data();
        let eng = QueryEngine::new(&d, 1);
        let pred = Range::new(vec![0], 2).unwrap();
        let mut scratch = Vec::new();
        for i in 0..20 {
            let q = [i as f64 / 25.0, 0.4];
            assert_eq!(
                eng.answer_with(&mut scratch, &pred, Aggregate::Median, &q),
                eng.answer(&pred, Aggregate::Median, &q)
            );
        }
    }

    #[test]
    #[should_panic(expected = "measure column")]
    fn bad_measure_panics() {
        let d = grid_data();
        let _ = QueryEngine::new(&d, 5);
    }
}
