//! Deployment lifecycle: DQD-guided routing and dynamic data.
//!
//! Sec. 4.3 of the paper sketches how a query processing engine would use
//! NeuroSketch in production: route large-range queries to the sketch and
//! small-range ones to the database, and (Sec. 7) periodically test the
//! model, retraining when accuracy drops. This example exercises both —
//! the [`neurosketch::router::DqdRouter`] and
//! [`neurosketch::maintenance::DriftMonitor`] — across a simulated data
//! drift.
//!
//! ```text
//! cargo run --release --example deployment_lifecycle
//! ```

use datagen::simple::{gaussian, uniform};
use neurosketch::maintenance::{refresh, DriftMonitor};
use neurosketch::router::{range_volume, DqdRouter, Route, RoutingPolicy};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};

fn main() {
    // Day 0: train on the current data.
    let data = uniform(20_000, 2, 1);
    let engine = QueryEngine::new(&data, 1);
    let wl = Workload::generate(&WorkloadConfig {
        dims: 2,
        active: ActiveMode::Fixed(vec![0]),
        range: RangeMode::Uniform,
        count: 2_000,
        seed: 2,
    })
    .expect("workload");
    let cfg = NeuroSketchConfig::default();
    let (sketch, report) =
        NeuroSketch::build(&engine, &wl.predicate, Aggregate::Count, &wl.queries, &cfg)
            .expect("build");

    // Wrap it in a router: ranges narrower than 2% of the domain go to
    // the exact engine (Lemma 3.6: tiny ranges have large sampling error).
    let policy = RoutingPolicy {
        min_range_volume: 0.02,
        max_leaf_aqc: f64::INFINITY,
    };
    let router = DqdRouter::new(sketch, report.leaf_aqcs.clone(), policy);

    let mut to_sketch = 0;
    let mut to_exact = 0;
    for q in &wl.queries {
        let vol = range_volume(q, 1);
        let (_, route) = router.answer(q, Some(vol), |q| {
            engine.answer(&wl.predicate, Aggregate::Count, q)
        });
        match route {
            Route::Sketch => to_sketch += 1,
            _ => to_exact += 1,
        }
    }
    println!("router: {to_sketch} queries answered by the sketch, {to_exact} by the exact engine");

    // Day 30: the data distribution drifts. The monitor checks any
    // `Deployment` — here the bare sketch — through the batched path.
    let drifted = gaussian(20_000, 2, 0.25, 0.08, 9);
    let drifted_engine = QueryEngine::new(&drifted, 1);
    let monitor = DriftMonitor::new(wl.queries[..200].to_vec(), 0.15).expect("monitor");
    let check = monitor.check(
        router.sketch(),
        &drifted_engine,
        &wl.predicate,
        Aggregate::Count,
    );
    println!(
        "drift check: normalized MAE {:.3} -> {}",
        check.nmae,
        if check.stale {
            "STALE, retraining"
        } else {
            "healthy"
        }
    );

    // Retrain against the new data with the same configuration.
    if check.stale {
        let (fresh, _) = refresh(
            &drifted_engine,
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg,
        )
        .expect("refresh");
        let after = monitor.check(&fresh, &drifted_engine, &wl.predicate, Aggregate::Count);
        println!(
            "after retraining: normalized MAE {:.3} ({})",
            after.nmae,
            if after.stale {
                "still stale"
            } else {
                "healthy again"
            }
        );
    }
}
