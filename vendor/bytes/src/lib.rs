//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate: cheaply cloneable byte buffers with little-endian cursor
//! reads/writes — the subset the `nn` binary model codec uses.
//!
//! ```
//! use bytes::{Buf, BufMut, BytesMut};
//!
//! let mut b = BytesMut::with_capacity(8);
//! b.put_u32_le(7);
//! b.put_f32_le(0.5);
//! let mut bytes = b.freeze();
//! assert_eq!(bytes.len(), 8);
//! assert_eq!(bytes.get_u32_le(), 7);
//! assert_eq!(bytes.get_f32_le(), 0.5);
//! assert_eq!(bytes.remaining(), 0);
//! ```

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::Arc;

/// Read cursor over a byte buffer. All multi-byte reads are
/// little-endian, matching the subset of `bytes::Buf` used here.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor.
    ///
    /// # Panics
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write cursor appending to a growable buffer; little-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable, cheaply cloneable byte buffer. Reading through
/// [`Buf`] consumes from the front without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wrap a static slice (copies in this stub — the sizes involved
    /// are tiny).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-range of the unread bytes.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Split off the first `len` unread bytes into their own `Bytes`
    /// (zero-copy), advancing this cursor past them — how embedded,
    /// length-prefixed sub-blobs are carved out of a container.
    ///
    /// # Panics
    /// Panics if `len > self.len()`.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "split_to past end of Bytes");
        let head = self.slice(0..len);
        self.start += len;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// A growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut w = BytesMut::with_capacity(0);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u8(7);
        w.put_f32_le(1.25);
        let b = w.freeze();
        assert_eq!(b.len(), 9);

        let mut r = b.clone();
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f32_le(), 1.25);
        assert_eq!(r.remaining(), 0);

        let tail = b.slice(4..9);
        assert_eq!(tail.len(), 5);
        assert_eq!(tail.to_vec()[0], 7);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.advance(3);
    }

    #[test]
    fn split_to_carves_a_prefix() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(1);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![2, 3]);
        assert_eq!(b.to_vec(), vec![4, 5]);
    }

    #[test]
    #[should_panic(expected = "split_to past end")]
    fn split_to_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.split_to(2);
    }
}
