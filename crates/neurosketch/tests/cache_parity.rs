//! The answer-cache contract, property-tested: a cached or deduplicated
//! serving path returns **bitwise identical** answers to the uncached
//! one, at any thread count, for every aggregate, through evictions,
//! and across hot swaps — where generation keying must also mean **zero
//! cross-generation hits** by construction.
//!
//! Every case serves the same duplicated stream twice (a cold pass that
//! fills the cache, a warm pass that hits it) and compares both passes
//! against the uncached baseline, so the hit path — not just the
//! fill path — is what the bitwise assertions pin down.

use neurosketch::cache::{entry_bytes, AnswerCache, CachePolicy, CachedDeployment};
use neurosketch::deploy::{Deployment, LiveDeployment};
use neurosketch::router::{DqdRouter, RoutingPolicy};
use neurosketch::serve::{ServeOptions, SketchServer};
use neurosketch::shard::{build_sharded, ShardPlan, ShardedServer, ShardedSketch};
use neurosketch::{NeuroSketch, NeuroSketchConfig};
use proptest::prelude::*;
use query::aggregate::Aggregate;
use query::exec::QueryEngine;
use query::workload::{ActiveMode, RangeMode, Workload, WorkloadConfig};
use std::sync::{Arc, OnceLock};

const AGGREGATES: [Aggregate; 4] = [
    Aggregate::Count,
    Aggregate::Sum,
    Aggregate::Avg,
    Aggregate::Std,
];

fn cfg() -> NeuroSketchConfig {
    let mut cfg = NeuroSketchConfig::small();
    cfg.train.epochs = 6;
    cfg
}

/// One small sketch per aggregate (trained on that aggregate's labels)
/// plus a 2-shard COUNT deployment — built once, shared by every test
/// and property case.
struct Base {
    wl: Workload,
    /// `(sketch, leaf AQCs)` per entry of [`AGGREGATES`].
    by_agg: Vec<(NeuroSketch, Vec<f64>)>,
    sharded: ShardedSketch,
}

fn base() -> &'static Base {
    static BASE: OnceLock<Base> = OnceLock::new();
    BASE.get_or_init(|| {
        let data = datagen::simple::uniform(400, 2, 11);
        let wl = Workload::generate(&WorkloadConfig {
            dims: 2,
            active: ActiveMode::Fixed(vec![0]),
            range: RangeMode::Uniform,
            count: 60,
            seed: 7,
        })
        .unwrap();
        let engine = QueryEngine::new(&data, 1);
        let by_agg = AGGREGATES
            .iter()
            .map(|&agg| {
                let labels = engine.label_batch(&wl.predicate, agg, &wl.queries, 2);
                let (sketch, report) =
                    NeuroSketch::build_from_labeled(&wl.queries, &labels, &cfg()).unwrap();
                (sketch, report.leaf_aqcs)
            })
            .collect();
        let (sharded, _) = build_sharded(
            &data,
            1,
            &ShardPlan::RoundRobin { shards: 2 },
            &wl.predicate,
            Aggregate::Count,
            &wl.queries,
            &cfg(),
        )
        .unwrap();
        Base {
            wl,
            by_agg,
            sharded,
        }
    })
}

fn opts(threads: usize, cache: CachePolicy) -> ServeOptions {
    ServeOptions {
        threads,
        cache,
        ..ServeOptions::default()
    }
}

fn server(agg_idx: usize, threads: usize, cache: CachePolicy) -> SketchServer<'static> {
    let (sketch, aqcs) = &base().by_agg[agg_idx];
    SketchServer::new(
        DqdRouter::new(sketch.clone(), aqcs.clone(), RoutingPolicy::default()),
        opts(threads, cache),
    )
}

/// A repeat-heavy stream: the workload queries selected by `picks`,
/// so arbitrary duplication patterns (including within-batch runs of
/// the same query) come straight from the proptest strategy.
fn stream_of(picks: &[usize]) -> (Vec<Vec<f64>>, Vec<usize>) {
    let wl = &base().wl;
    let stream = picks
        .iter()
        .map(|&p| wl.queries[p % wl.queries.len()].clone())
        .collect();
    let idx = picks.iter().map(|&p| p % wl.queries.len()).collect();
    (stream, idx)
}

fn assert_bitwise(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: answer {i} drifted ({g} vs {w})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached + deduplicated serving is bitwise identical to the
    /// uncached path for every aggregate, at 1 and 4 threads, over
    /// arbitrary duplication patterns — cold pass and warm (hitting)
    /// pass alike.
    #[test]
    fn cached_serving_is_bitwise_identical(
        picks in prop::collection::vec(0usize..60, 1..70),
        agg_idx in 0usize..AGGREGATES.len(),
        threads in (0usize..2).prop_map(|b| if b == 0 { 1 } else { 4 }),
    ) {
        let (stream, idx) = stream_of(&picks);
        let baseline = server(agg_idx, 1, CachePolicy::OFF);
        let (direct, _) = baseline.answer_batch(&base().wl.queries);
        let want: Vec<f64> = idx.iter().map(|&i| direct[i]).collect();

        let cached = server(agg_idx, threads, CachePolicy::cached(64 << 10));
        let (cold, _) = cached.answer_batch(&stream);
        assert_bitwise("cold pass", &cold, &want);
        let (warm, warm_stats) = cached.answer_batch(&stream);
        assert_bitwise("warm pass", &warm, &want);
        prop_assert_eq!(
            warm_stats.cache_hits + warm_stats.dedup_hits,
            stream.len(),
            "second pass of an identical stream must be all hits"
        );
    }

    /// A cache so small it is evicting constantly still never changes
    /// an answer — the budget bounds memory, not correctness.
    #[test]
    fn tiny_budget_eviction_never_changes_answers(
        picks in prop::collection::vec(0usize..60, 20..70),
        threads in (0usize..2).prop_map(|b| if b == 0 { 1 } else { 4 }),
    ) {
        let (stream, idx) = stream_of(&picks);
        let baseline = server(0, 1, CachePolicy::OFF);
        let (direct, _) = baseline.answer_batch(&base().wl.queries);
        let want: Vec<f64> = idx.iter().map(|&i| direct[i]).collect();

        // Room for ~3 entries across 2 stripes: almost every insert
        // evicts, and the doorkeeper gates almost every admission.
        let tiny = CachePolicy {
            capacity_bytes: 3 * entry_bytes(base().wl.queries[0].len()),
            stripes: 2,
            dedup: true,
        };
        let cached = server(0, threads, tiny);
        for pass in 0..3 {
            let (got, _) = cached.answer_batch(&stream);
            assert_bitwise(&format!("tiny-budget pass {pass}"), &got, &want);
        }
    }
}

/// The sharded scatter/gather layer under its embedded cache: bitwise
/// parity against the uncached sharded path, cold and warm, at 1 and 4
/// threads.
#[test]
fn sharded_cached_serving_is_bitwise_identical() {
    let b = base();
    let baseline = ShardedServer::new(b.sharded.clone(), opts(1, CachePolicy::OFF));
    let (want, _) = baseline.answer_batch(&b.wl.queries);
    for threads in [1usize, 4] {
        let cached = ShardedServer::new(
            b.sharded.clone(),
            opts(threads, CachePolicy::cached(64 << 10)),
        );
        let (cold, _) = cached.answer_batch(&b.wl.queries);
        assert_bitwise("sharded cold", &cold, &want);
        let (warm, stats) = cached.answer_batch(&b.wl.queries);
        assert_bitwise("sharded warm", &warm, &want);
        assert_eq!(
            stats.cache_hits,
            b.wl.queries.len(),
            "second identical batch must be all cache hits"
        );
    }
}

/// Hot swap mid-stream over one shared cache: after the generation
/// bump, not a single answer may come from the old generation's
/// entries — zero stale hits, by construction of the key, verified
/// bitwise and on the counters.
#[test]
fn hot_swap_has_zero_cross_generation_hits() {
    let b = base();
    // Two genuinely different deployments (different aggregates), so a
    // stale hit would be visible in the bits, not just the counters.
    let inner0 = Arc::new(server(0, 2, CachePolicy::OFF));
    let inner1 = Arc::new(server(1, 2, CachePolicy::OFF));
    let (want0, _) = inner0.answer_batch(&b.wl.queries);
    let (want1, _) = inner1.answer_batch(&b.wl.queries);
    assert_ne!(
        want0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "test must distinguish generations"
    );

    let cache = AnswerCache::from_policy(&CachePolicy::cached(256 << 10));
    let live = LiveDeployment::new(CachedDeployment::new(inner0.clone(), cache.clone(), 0), 0);
    // Warm generation 0: second pass is all hits.
    live.answer_batch(&b.wl.queries);
    let (got0, stats0) = live.answer_batch(&b.wl.queries);
    assert_bitwise("generation 0 warm", &got0, &want0);
    assert_eq!(stats0.cache_hits, b.wl.queries.len());

    // Swap generations mid-stream; the same shared cache still holds
    // every generation-0 entry, and none of them may answer.
    live.swap(CachedDeployment::new(inner1.clone(), cache.clone(), 1), 1);
    let before = cache.stats();
    let (got1, stats1) = live.answer_batch(&b.wl.queries);
    assert_bitwise("first post-swap batch", &got1, &want1);
    assert_eq!(
        stats1.cache_hits, 0,
        "a hit across the swap would be a stale answer"
    );
    assert_eq!(
        cache.stats().hits,
        before.hits,
        "the shared cache recorded a cross-generation hit"
    );

    // The new generation earns its way in: repeats become hits while
    // staying bitwise generation 1.
    live.answer_batch(&b.wl.queries);
    let (got1b, stats1b) = live.answer_batch(&b.wl.queries);
    assert_bitwise("generation 1 warm", &got1b, &want1);
    assert_eq!(stats1b.cache_hits, b.wl.queries.len());
}
