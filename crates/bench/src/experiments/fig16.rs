//! Figs. 15/16 + Table 4: 2-D data subsets, learned vs. true query
//! functions, and the AQC ↔ error relationship on real-shaped data.
//!
//! For each dataset we project to two columns (predicate attribute,
//! measure), ask AVG over a sliding window of 10% of the predicate
//! domain, and compare the learned 1-D query function against ground
//! truth. Shapes to check: VS has sharp spatial changes ⇒ largest AQC
//! and largest error; TPC is near-linear ⇒ smallest of both (Table 4).

use crate::common::ExperimentContext;
use datagen::PaperDataset;
use neurosketch::aqc::aqc_sampled;
use neurosketch::NeuroSketch;
use query::aggregate::Aggregate;
use query::error::normalized_mae;
use query::exec::QueryEngine;
use query::predicate::FixedWidthRange;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One dataset's 2-D study.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Dataset name (2-D projection).
    pub dataset: &'static str,
    /// Grid of query positions `c`.
    pub grid: Vec<f64>,
    /// True query-function values on the grid.
    pub truth: Vec<f64>,
    /// Learned values on the grid.
    pub learned: Vec<f64>,
    /// Normalized MAE over the grid.
    pub nmae: f64,
    /// AQC of the query function after scaling both axes to `[0,1]`
    /// (Table 4's "Norm. AQC").
    pub norm_aqc: f64,
}

/// Which 2-D projection each dataset uses (predicate attr, measure attr),
/// mirroring Fig. 15: VS lat→duration, PM temp→PM2.5, TPC
/// ext_sales_price→net_profit.
fn projection(ds: PaperDataset) -> (usize, usize) {
    match ds {
        PaperDataset::Vs => (0, 2),
        PaperDataset::Pm => (1, 0),
        PaperDataset::Tpc1 => (5, 12),
        _ => (0, 1),
    }
}

/// Run the 2-D query-function study.
pub fn run(ctx: &ExperimentContext) -> Vec<Fig16Row> {
    let width = 0.10; // r fixed to 10% of the column range
    [PaperDataset::Vs, PaperDataset::Pm, PaperDataset::Tpc1]
        .into_iter()
        .map(|ds| {
            let (data, _) = ctx.dataset(ds);
            let (attr, meas) = projection(ds);
            let proj = data.project(&[attr, meas]).expect("projection");
            let engine = QueryEngine::new(&proj, 1);
            let pred = FixedWidthRange::new(vec![0], vec![width], 2).expect("valid");

            // Train on uniform corners.
            let mut rng = StdRng::seed_from_u64(ctx.seed);
            let train: Vec<Vec<f64>> = (0..ctx.train_queries())
                .map(|_| vec![rng.random_range(0.0..1.0 - width)])
                .collect();
            let labels = engine.label_batch(&pred, Aggregate::Avg, &train, 4);
            let mut cfg = ctx.ns_config();
            cfg.tree_height = 0;
            cfg.target_partitions = 1;
            let (sketch, _) =
                NeuroSketch::build_from_labeled(&train, &labels, &cfg).expect("build");

            // Evaluate on a grid of corners.
            let steps = if ctx.fast { 25 } else { 50 };
            let grid: Vec<f64> = (0..steps)
                .map(|i| i as f64 / steps as f64 * (1.0 - width))
                .collect();
            let truth: Vec<f64> = grid
                .iter()
                .map(|&c| engine.answer(&pred, Aggregate::Avg, &[c]))
                .collect();
            let learned: Vec<f64> = grid.iter().map(|&c| sketch.answer(&[c])).collect();
            let nmae = normalized_mae(&truth, &learned);

            // Table 4's normalized AQC: scale f to [0,1] first (the query
            // axis already spans ~[0,1]).
            let lo = truth.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let scaled: Vec<f64> = truth
                .iter()
                .map(|v| if hi > lo { (v - lo) / (hi - lo) } else { 0.0 })
                .collect();
            let grid_q: Vec<Vec<f64>> = grid.iter().map(|&c| vec![c]).collect();
            let norm_aqc = aqc_sampled(&grid_q, &scaled, 20_000);

            Fig16Row {
                dataset: ds.name(),
                grid,
                truth,
                learned,
                nmae,
                norm_aqc,
            }
        })
        .collect()
}

/// Print Table 4 plus sparkline-style function comparisons.
pub fn print(rows: &[Fig16Row]) {
    println!("\n==== Fig. 16 / Table 4: 2-D query functions ====");
    println!("{:<10} {:>10} {:>12}", "dataset", "norm MAE", "norm AQC");
    for r in rows {
        println!("{:<10} {:>10.4} {:>12.3}", r.dataset, r.nmae, r.norm_aqc);
    }
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for r in rows {
        let render = |vals: &[f64]| -> String {
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            vals.iter()
                .map(|v| {
                    let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
                    shades[((t * 9.0).round() as usize).min(9)]
                })
                .collect()
        };
        println!("\n[{} (2D)]", r.dataset);
        println!("  truth:   {}", render(&r.truth));
        println!("  learned: {}", render(&r.learned));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_ordering_holds() {
        // Paper Table 4: VS has the largest AQC and MAE; TPC the smallest
        // AQC. At smoke scale we check the AQC ordering (the robust part).
        let ctx = ExperimentContext::fast();
        let rows = run(&ctx);
        let by = |n: &str| rows.iter().find(|r| r.dataset == n).unwrap();
        let (vs, tpc) = (by("VS"), by("TPC1"));
        assert!(
            vs.norm_aqc > tpc.norm_aqc,
            "VS AQC {} should exceed TPC {}",
            vs.norm_aqc,
            tpc.norm_aqc
        );
        for r in &rows {
            assert!(r.nmae.is_finite());
            assert_eq!(r.truth.len(), r.learned.len());
        }
    }
}
